// Package server is the simulation-as-a-service layer: an HTTP/JSON
// session service over the public sim API. Designs compile once into a
// cross-user cache keyed by [sim.SourceHash]; sessions are leased from
// each design's elastic [sim.Pool] (grown on demand, reaped after idle
// TTL, bounded per client with 429 backpressure); and the Testbench DMI
// protocol of §6.2 is framed over the wire as batched multi-cycle command
// lists so one round-trip amortises over hundreds of simulated cycles.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"

	"rteaal/internal/testbench"
	"rteaal/sim"
)

// Config bounds the service. The zero value takes every default.
type Config struct {
	// CacheSize bounds the compiled-design LRU (default 16 designs).
	CacheSize int
	// PoolCap bounds each design's session pool (default 8 sessions).
	PoolCap int
	// SessionTTL evicts leases idle longer than this on Sweep
	// (default 5m).
	SessionTTL time.Duration
	// PoolIdleTTL closes pooled sessions idle longer than this on Sweep,
	// returning their creation budget (default 1m).
	PoolIdleTTL time.Duration
	// MaxSessionsPerClient bounds concurrent leases per client identity
	// (default 8).
	MaxSessionsPerClient int
	// MaxLanes bounds the lane count of batch sessions (default 256).
	MaxLanes int
	// MaxCommandsPerRequest bounds one command batch (default 4096).
	MaxCommandsPerRequest int
	// MaxCyclesPerCommand bounds one command's cycle budget
	// (default 1e6).
	MaxCyclesPerCommand int64
	// MaxSourceBytes bounds POST /designs bodies (default 8 MiB).
	MaxSourceBytes int64
	// MaxLogEntries bounds each session's recorded transaction log;
	// oldest entries drop first (default 4096).
	MaxLogEntries int
	// Clock overrides time.Now for session and pool TTLs (tests).
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.CacheSize <= 0 {
		c.CacheSize = 16
	}
	if c.PoolCap <= 0 {
		c.PoolCap = 8
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 5 * time.Minute
	}
	if c.PoolIdleTTL <= 0 {
		c.PoolIdleTTL = time.Minute
	}
	if c.MaxSessionsPerClient <= 0 {
		c.MaxSessionsPerClient = 8
	}
	if c.MaxLanes <= 0 {
		c.MaxLanes = 256
	}
	if c.MaxCommandsPerRequest <= 0 {
		c.MaxCommandsPerRequest = 4096
	}
	if c.MaxCyclesPerCommand <= 0 {
		c.MaxCyclesPerCommand = 1_000_000
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = 8 << 20
	}
	if c.MaxLogEntries <= 0 {
		c.MaxLogEntries = 4096
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Server is the session service. It is an http.Handler; mount it directly
// or behind a mux prefix.
type Server struct {
	cfg      Config
	cache    *designCache
	sessions *sessionRegistry
	metrics  *metrics
	mux      *http.ServeMux
}

// New builds a Server from cfg (zero value for defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		cache:    newDesignCache(cfg.CacheSize, cfg.PoolCap, cfg.Clock),
		sessions: newSessionRegistry(cfg.MaxSessionsPerClient, cfg.MaxLanes, cfg.SessionTTL, cfg.Clock),
		metrics:  newMetrics(),
		mux:      http.NewServeMux(),
	}
	s.route("POST /designs", s.handleCompile)
	s.route("GET /designs/{hash}", s.handleDesignInfo)
	s.route("POST /designs/{hash}/sessions", s.handleCreateSession)
	s.route("POST /sessions/{id}/commands", s.handleCommands)
	s.route("GET /sessions/{id}/log", s.handleLog)
	s.route("DELETE /sessions/{id}", s.handleRelease)
	s.route("GET /healthz", s.handleHealth)
	s.route("GET /metrics", s.handleMetrics)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// route registers a handler wrapped with per-endpoint latency accounting
// under the route's pattern.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		s.metrics.observe(pattern, time.Since(start), sw.status >= 400)
	})
}

// statusWriter captures the response status for metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Sweep runs one maintenance pass: evict leases idle past SessionTTL and
// shrink design pools past PoolIdleTTL. Call it periodically (see
// cmd/rteaal-serve) or directly in tests with a fake Clock. It reports
// evicted leases and reaped pool sessions.
func (s *Server) Sweep() (leases, poolSessions int) {
	leases = s.sessions.reapExpired()
	poolSessions = s.cache.reapIdle(s.cfg.PoolIdleTTL)
	return leases, poolSessions
}

// Close releases every lease and tears down every cached design's pool.
func (s *Server) Close() {
	s.sessions.closeAll()
	s.cache.close()
}

// clientID identifies the requesting client for per-client session
// limits: the X-Client header when present, else the remote host.
func clientID(r *http.Request) string {
	if c := r.Header.Get("X-Client"); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the connection is gone; nothing to do
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// decodeBody strictly decodes a JSON request body into v. An empty body
// leaves v at its zero value.
func decodeBody(r *http.Request, limit int64, v any) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		return fmt.Errorf("server: reading body: %w", err)
	}
	if int64(len(body)) > limit {
		return fmt.Errorf("server: body exceeds the %d-byte limit", limit)
	}
	if len(body) == 0 {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("server: decoding body: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("server: trailing data after body")
	}
	return nil
}

// handleCompile serves POST /designs: hash the normalized source plus
// options, compile at most once across all clients, answer 201 for a
// fresh compile and 200 from cache.
func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req CompileRequest
	if err := decodeBody(r, s.cfg.MaxSourceBytes, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Source == "" {
		writeError(w, http.StatusBadRequest, errors.New("server: source is required"))
		return
	}
	opts, err := req.Options.SimOptions()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	hash := sim.SourceHash(req.Source, opts...)
	entry, cached, err := s.cache.getOrCompile(hash, func() (*sim.Design, error) {
		return sim.Compile(req.Source, opts...)
	})
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	status := http.StatusCreated
	if cached {
		status = http.StatusOK
	}
	writeJSON(w, status, CompileResponse{DesignInfo: entry.info, Cached: cached})
}

// handleDesignInfo serves GET /designs/{hash}.
func (s *Server) handleDesignInfo(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.cache.lookup(r.PathValue("hash"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("server: unknown design"))
		return
	}
	writeJSON(w, http.StatusOK, CompileResponse{DesignInfo: entry.info, Cached: true})
}

// handleCreateSession serves POST /designs/{hash}/sessions: lease a
// pooled session (or a dedicated multi-lane batch) of a cached design.
// Saturation answers 429 with Retry-After, pointing clients at the idle
// TTL after which capacity returns.
func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.cache.lookup(r.PathValue("hash"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("server: unknown design"))
		return
	}
	var req CreateSessionRequest
	if err := decodeBody(r, 1<<16, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	l, err := s.sessions.create(entry, clientID(r), req.Lanes)
	switch {
	case err == nil:
	case errors.Is(err, errClientLimit), errors.Is(err, sim.ErrPoolExhausted):
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.PoolIdleTTL/time.Second)+1))
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, sim.ErrPoolClosed):
		writeError(w, http.StatusConflict, err)
		return
	default:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, SessionResponse{SessionID: l.id, Hash: entry.hash, Lanes: l.tb.Lanes()})
}

// handleCommands serves POST /sessions/{id}/commands: decode a batched
// wire command list, execute it in order on the lease's testbench, record
// the transaction log, and answer the outcomes. A failing command answers
// 422 with the completed prefix; the session stays usable.
func (s *Server) handleCommands(w http.ResponseWriter, r *http.Request) {
	l, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("server: unknown session"))
		return
	}
	var req CommandsRequest
	if err := decodeBody(r, s.cfg.MaxSourceBytes, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cmds, err := testbench.DecodeCommands(req.Commands, s.cfg.MaxCommandsPerRequest)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	l.mu.Lock()
	if l.gone {
		l.mu.Unlock()
		writeError(w, http.StatusGone, errLeaseGone)
		return
	}
	outcomes, cycles, execErr := runCommands(l.tb, cmds, s.cfg.MaxCyclesPerCommand)
	// Record the completed prefix: each entry stamped with the cycle at
	// which its command started, so a log replay reproduces the trace.
	at := l.tb.Cycle() - cycles
	for i, out := range outcomes {
		l.log = append(l.log, LogEntry{Cycle: at, Command: cmds[i], Outcome: out})
		at += out.Cycles
	}
	if excess := len(l.log) - s.cfg.MaxLogEntries; excess > 0 {
		l.dropped += int64(excess)
		l.log = append(l.log[:0:0], l.log[excess:]...)
	}
	cycle := l.tb.Cycle()
	l.mu.Unlock()

	s.metrics.addWork(cycles, len(outcomes))
	resp := CommandsResponse{Outcomes: outcomes, Cycle: cycle}
	if execErr != nil {
		resp.Error = execErr.Error()
		writeJSON(w, http.StatusUnprocessableEntity, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleLog serves GET /sessions/{id}/log: the recorded, replayable
// transaction log.
func (s *Server) handleLog(w http.ResponseWriter, r *http.Request) {
	l, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("server: unknown session"))
		return
	}
	l.mu.Lock()
	entries := make([]LogEntry, len(l.log))
	copy(entries, l.log)
	dropped := l.dropped
	l.mu.Unlock()
	writeJSON(w, http.StatusOK, LogResponse{SessionID: l.id, Dropped: dropped, Entries: entries})
}

// handleRelease serves DELETE /sessions/{id}.
func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	if !s.sessions.release(r.PathValue("id")) {
		writeError(w, http.StatusNotFound, errors.New("server: unknown session"))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleHealth serves GET /healthz.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	cm, _ := s.cache.stats()
	sm := s.sessions.stats()
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok", Designs: cm.Entries, Sessions: sm.Live})
}

// handleMetrics serves GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	cm, pools := s.cache.stats()
	work, eps := s.metrics.snapshot()
	writeJSON(w, http.StatusOK, MetricsResponse{
		Cache:     cm,
		Sessions:  s.sessions.stats(),
		Work:      work,
		Pools:     pools,
		Endpoints: eps,
	})
}
