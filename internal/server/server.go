// Package server is the simulation-as-a-service layer: an HTTP/JSON
// session service over the public sim API. Designs compile once into a
// cross-user cache keyed by [sim.SourceHash]; sessions are leased from
// each design's elastic [sim.Pool] (grown on demand, reaped after idle
// TTL, bounded per client with 429 backpressure); and the Testbench DMI
// protocol of §6.2 is framed over the wire as batched multi-cycle command
// lists so one round-trip amortises over hundreds of simulated cycles.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rteaal/internal/faultinject"
	"rteaal/internal/testbench"
	"rteaal/sim"
)

// Config bounds the service. The zero value takes every default.
type Config struct {
	// CacheSize bounds the compiled-design LRU (default 16 designs).
	CacheSize int
	// PoolCap bounds each design's session pool (default 8 sessions).
	PoolCap int
	// SessionTTL evicts leases idle longer than this on Sweep
	// (default 5m).
	SessionTTL time.Duration
	// PoolIdleTTL closes pooled sessions idle longer than this on Sweep,
	// returning their creation budget (default 1m).
	PoolIdleTTL time.Duration
	// MaxSessionsPerClient bounds concurrent leases per client identity
	// (default 8).
	MaxSessionsPerClient int
	// MaxLanes bounds the lane count of batch sessions (default 256).
	MaxLanes int
	// MaxCommandsPerRequest bounds one command batch (default 4096).
	MaxCommandsPerRequest int
	// MaxCyclesPerCommand bounds one command's cycle budget
	// (default 1e6).
	MaxCyclesPerCommand int64
	// MaxSourceBytes bounds POST /designs bodies (default 8 MiB).
	MaxSourceBytes int64
	// MaxLogEntries bounds each session's recorded transaction log;
	// oldest entries drop first (default 4096).
	MaxLogEntries int
	// RequestTimeout bounds any single request end to end (default 2m;
	// negative disables). Expiry surfaces as 504 with Kind "timeout".
	RequestTimeout time.Duration
	// ExecTimeout bounds one command list's execution (default 1m;
	// negative disables). An expired run stops at the next cancellation
	// check and answers 504 with the completed prefix — the engine state
	// the prefix produced is real and the session stays usable.
	ExecTimeout time.Duration
	// PoolWait, when positive, makes session creation wait up to this long
	// for a free pooled session before answering 429 (default 0: fail
	// fast).
	PoolWait time.Duration
	// CompileFailLimit trips a per-design circuit breaker after this many
	// consecutive compile failures (default 3; negative disables).
	CompileFailLimit int
	// BreakerCooldown is how long a tripped breaker short-circuits
	// compiles of that design with 503 before allowing a probe
	// (default 30s).
	BreakerCooldown time.Duration
	// DrainRetryAfter is the Retry-After answered with 503 while the
	// server drains (default 5s).
	DrainRetryAfter time.Duration
	// Clock overrides time.Now for session and pool TTLs (tests).
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.CacheSize <= 0 {
		c.CacheSize = 16
	}
	if c.PoolCap <= 0 {
		c.PoolCap = 8
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 5 * time.Minute
	}
	if c.PoolIdleTTL <= 0 {
		c.PoolIdleTTL = time.Minute
	}
	if c.MaxSessionsPerClient <= 0 {
		c.MaxSessionsPerClient = 8
	}
	if c.MaxLanes <= 0 {
		c.MaxLanes = 256
	}
	if c.MaxCommandsPerRequest <= 0 {
		c.MaxCommandsPerRequest = 4096
	}
	if c.MaxCyclesPerCommand <= 0 {
		c.MaxCyclesPerCommand = 1_000_000
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = 8 << 20
	}
	if c.MaxLogEntries <= 0 {
		c.MaxLogEntries = 4096
	}
	switch {
	case c.RequestTimeout == 0:
		c.RequestTimeout = 2 * time.Minute
	case c.RequestTimeout < 0:
		c.RequestTimeout = 0
	}
	switch {
	case c.ExecTimeout == 0:
		c.ExecTimeout = time.Minute
	case c.ExecTimeout < 0:
		c.ExecTimeout = 0
	}
	if c.PoolWait < 0 {
		c.PoolWait = 0
	}
	switch {
	case c.CompileFailLimit == 0:
		c.CompileFailLimit = 3
	case c.CompileFailLimit < 0:
		c.CompileFailLimit = 0
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 30 * time.Second
	}
	if c.DrainRetryAfter <= 0 {
		c.DrainRetryAfter = 5 * time.Second
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Server is the session service. It is an http.Handler; mount it directly
// or behind a mux prefix.
type Server struct {
	cfg      Config
	cache    *designCache
	sessions *sessionRegistry
	metrics  *metrics
	mux      *http.ServeMux

	// draining gates new work during graceful shutdown. inflight counts
	// command lists in execution so Drain can wait them out; it is a
	// mutex-guarded counter rather than a WaitGroup because requests keep
	// arriving (and incrementing from zero) while Drain waits, which
	// WaitGroup forbids. idle is lazily created by Drain and closed by the
	// last exiting request.
	draining atomic.Bool
	execMu   sync.Mutex
	inflight int
	idle     chan struct{}
}

// execEnter joins the in-flight set. Call before checking the draining
// flag: a BeginDrain observed after the check still sees this request in
// Drain's wait.
func (s *Server) execEnter() {
	s.execMu.Lock()
	s.inflight++
	s.execMu.Unlock()
}

func (s *Server) execExit() {
	s.execMu.Lock()
	s.inflight--
	if s.inflight == 0 && s.idle != nil {
		close(s.idle)
		s.idle = nil
	}
	s.execMu.Unlock()
}

// New builds a Server from cfg (zero value for defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		cache:    newDesignCache(cfg.CacheSize, cfg.PoolCap, cfg.CompileFailLimit, cfg.BreakerCooldown, cfg.Clock),
		sessions: newSessionRegistry(cfg.MaxSessionsPerClient, cfg.MaxLanes, cfg.SessionTTL, cfg.Clock),
		metrics:  newMetrics(),
		mux:      http.NewServeMux(),
	}
	s.route("POST /designs", s.handleCompile)
	s.route("GET /designs/{hash}", s.handleDesignInfo)
	s.route("POST /designs/{hash}/sessions", s.handleCreateSession)
	s.route("POST /sessions/{id}/commands", s.handleCommands)
	s.route("GET /sessions/{id}/log", s.handleLog)
	s.route("DELETE /sessions/{id}", s.handleRelease)
	s.route("GET /healthz", s.handleHealth)
	s.route("GET /readyz", s.handleReady)
	s.route("GET /metrics", s.handleMetrics)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// route registers a handler wrapped with the request deadline, a recovery
// boundary, and per-endpoint latency accounting under the route's pattern.
// The recovery here is the outermost net: panics escaping a handler (the
// exec and create paths have tighter boundaries that also quarantine)
// become typed 500s instead of killing the connection goroutine silently.
// http.ErrAbortHandler passes through — it is the deliberate
// kill-this-connection signal.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		if s.cfg.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					s.metrics.observe(pattern, time.Since(start), true)
					panic(rec)
				}
				s.metrics.panicRecovered()
				if sw.status == 0 {
					writeErrorKind(sw, http.StatusInternalServerError, KindPanic,
						fmt.Errorf("server: internal panic: %v", rec))
				}
			}
			s.metrics.observe(pattern, time.Since(start), sw.status >= 400)
		}()
		h(sw, r)
	})
}

// BeginDrain puts the server into graceful shutdown: readiness fails and
// new work answers 503 with Retry-After while in-flight command lists run
// to completion. Idempotent; EndDrain reverses it (tests, aborted
// shutdowns).
func (s *Server) BeginDrain() { s.draining.Store(true) }

// EndDrain returns a draining server to service.
func (s *Server) EndDrain() { s.draining.Store(false) }

// Drain blocks until every in-flight command list has finished or ctx
// expires. Call BeginDrain first so no new work keeps the count up.
func (s *Server) Drain(ctx context.Context) error {
	s.execMu.Lock()
	if s.inflight == 0 {
		s.execMu.Unlock()
		return nil
	}
	if s.idle == nil {
		s.idle = make(chan struct{})
	}
	done := s.idle
	s.execMu.Unlock()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// rejectIfDraining answers 503 for new work during drain.
func (s *Server) rejectIfDraining(w http.ResponseWriter) bool {
	if !s.draining.Load() {
		return false
	}
	s.metrics.drainReject()
	w.Header().Set("Retry-After", retryAfterSecs(s.cfg.DrainRetryAfter))
	writeErrorKind(w, http.StatusServiceUnavailable, KindDraining,
		errors.New("server: draining; retry against another replica"))
	return true
}

// statusWriter captures the response status for metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Sweep runs one maintenance pass: evict leases idle past SessionTTL and
// shrink design pools past PoolIdleTTL. Call it periodically (see
// cmd/rteaal-serve) or directly in tests with a fake Clock. It reports
// evicted leases and reaped pool sessions.
func (s *Server) Sweep() (leases, poolSessions int) {
	leases = s.sessions.reapExpired()
	poolSessions = s.cache.reapIdle(s.cfg.PoolIdleTTL)
	return leases, poolSessions
}

// Close releases every lease and tears down every cached design's pool.
func (s *Server) Close() {
	s.sessions.closeAll()
	s.cache.close()
}

// clientID identifies the requesting client for per-client session
// limits: the X-Client header when present, else the remote host.
func clientID(r *http.Request) string {
	if c := r.Header.Get("X-Client"); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the connection is gone; nothing to do
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// writeErrorKind answers a typed error (see the Kind* constants).
func writeErrorKind(w http.ResponseWriter, status int, kind string, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error(), Kind: kind})
}

// retryAfterSecs renders a duration as a Retry-After header value,
// rounding up so a sub-second hint never becomes "0".
func retryAfterSecs(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// decodeBody strictly decodes a JSON request body into v. An empty body
// leaves v at its zero value.
func decodeBody(r *http.Request, limit int64, v any) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		return fmt.Errorf("server: reading body: %w", err)
	}
	if int64(len(body)) > limit {
		return fmt.Errorf("server: body exceeds the %d-byte limit", limit)
	}
	if len(body) == 0 {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("server: decoding body: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("server: trailing data after body")
	}
	return nil
}

// handleCompile serves POST /designs: hash the normalized source plus
// options, compile at most once across all clients, answer 201 for a
// fresh compile and 200 from cache. Failures are typed: a crashed compile
// answers 500 (kind "panic"), a circuit-broken design 503 with
// Retry-After (kind "circuit_open"), an expired deadline 504, and an
// ordinary compile error 422 — and none of them can wedge concurrent
// clients that joined the same single-flight compile.
func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	if s.rejectIfDraining(w) {
		return
	}
	var req CompileRequest
	if err := decodeBody(r, s.cfg.MaxSourceBytes, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Source == "" {
		writeError(w, http.StatusBadRequest, errors.New("server: source is required"))
		return
	}
	opts, err := req.Options.SimOptions()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	hash := sim.SourceHash(req.Source, opts...)
	entry, cached, err := s.cache.getOrCompile(r.Context(), hash, func() (*sim.Design, error) {
		return sim.Compile(req.Source, opts...)
	})
	if err != nil {
		var open errCircuitOpen
		switch {
		case errors.As(err, &open):
			w.Header().Set("Retry-After", retryAfterSecs(open.retryAfter))
			writeErrorKind(w, http.StatusServiceUnavailable, KindCircuitOpen, err)
		case isPanicErr(err):
			s.metrics.panicRecovered()
			writeErrorKind(w, http.StatusInternalServerError, KindPanic, err)
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			s.metrics.timedOut()
			writeErrorKind(w, http.StatusGatewayTimeout, KindTimeout, err)
		default:
			writeError(w, http.StatusUnprocessableEntity, err)
		}
		return
	}
	status := http.StatusCreated
	if cached {
		status = http.StatusOK
	}
	writeJSON(w, status, CompileResponse{DesignInfo: entry.info, Cached: cached})
}

// isPanicErr reports whether err carries a recovered panic.
func isPanicErr(err error) bool {
	_, ok := asPanicFault(err)
	return ok
}

// handleDesignInfo serves GET /designs/{hash}.
func (s *Server) handleDesignInfo(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.cache.lookup(r.PathValue("hash"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("server: unknown design"))
		return
	}
	writeJSON(w, http.StatusOK, CompileResponse{DesignInfo: entry.info, Cached: true})
}

// handleCreateSession serves POST /designs/{hash}/sessions: lease a
// pooled session (or a dedicated multi-lane batch) of a cached design.
// Saturation answers 429 with Retry-After, pointing clients at the idle
// TTL after which capacity returns.
func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	if s.rejectIfDraining(w) {
		return
	}
	entry, ok := s.cache.lookup(r.PathValue("hash"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("server: unknown design"))
		return
	}
	var req CreateSessionRequest
	if err := decodeBody(r, 1<<16, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	l, err := s.sessions.create(r.Context(), entry, clientID(r), req.Lanes, s.cfg.PoolWait)
	switch {
	case err == nil:
	case errors.Is(err, errClientLimit), errors.Is(err, sim.ErrPoolExhausted):
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.PoolIdleTTL/time.Second)+1))
		writeErrorKind(w, http.StatusTooManyRequests, KindBackpressure, err)
		return
	case errors.Is(err, sim.ErrPoolClosed):
		writeError(w, http.StatusConflict, err)
		return
	case isPanicErr(err):
		// Instantiation crashed; the reservation and creation budget were
		// already returned, so the pool stays healthy for the next caller.
		s.metrics.panicRecovered()
		writeErrorKind(w, http.StatusInternalServerError, KindPanic, err)
		return
	default:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, SessionResponse{SessionID: l.id, Hash: entry.hash, Lanes: l.tb.Lanes()})
}

// handleCommands serves POST /sessions/{id}/commands: decode a batched
// wire command list, execute it in order on the lease's testbench, record
// the transaction log, and answer the outcomes. A failing command answers
// 422 with the completed prefix and the session stays usable; so do a
// deadline expiry (504, kind "timeout") and a concurrent DELETE (410,
// kind "canceled") — both stop at a cancellation check with the prefix's
// engine state intact. A panic during execution quarantines the lease:
// its engine is discarded, never re-pooled, and the answer is a typed 500.
func (s *Server) handleCommands(w http.ResponseWriter, r *http.Request) {
	s.execEnter()
	defer s.execExit()
	if s.rejectIfDraining(w) {
		return
	}
	l, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("server: unknown session"))
		return
	}
	var req CommandsRequest
	if err := decodeBody(r, s.cfg.MaxSourceBytes, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cmds, err := testbench.DecodeCommands(req.Commands, s.cfg.MaxCommandsPerRequest)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	ctx := r.Context()
	if s.cfg.ExecTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.ExecTimeout)
		defer cancel()
	}

	l.mu.Lock()
	if l.gone {
		l.mu.Unlock()
		writeErrorKind(w, http.StatusGone, KindGone, errLeaseGone)
		return
	}
	// Long runs poll this probe at chunk boundaries: the exec deadline,
	// a vanished client, and a concurrent DELETE (l.abort) all stop the
	// run within kernel.CancelCheckCycles cycles instead of holding the
	// engine for the rest of a megacycle batch.
	l.tb.SetCancel(func() bool { return l.abort.Load() || ctx.Err() != nil })
	outcomes, cycles, execErr := runCommandsRecover(l.tb, cmds, s.cfg.MaxCyclesPerCommand)
	l.tb.SetCancel(nil)

	if pf, isPanic := asPanicFault(execErr); isPanic {
		// Quarantine: the engine panicked mid-run, so its state cannot be
		// trusted. Discard it (the pool mints a clean replacement) and
		// unlink the lease; the lease's own release path is skipped — the
		// engine must never travel back through Pool.Put.
		l.gone = true
		if l.sess != nil {
			l.entry.pool.Discard(l.sess)
		}
		if l.batch != nil {
			l.batch.Close()
		}
		l.mu.Unlock()
		s.sessions.forget(l)
		s.metrics.panicRecovered()
		writeErrorKind(w, http.StatusInternalServerError, KindPanic, pf)
		return
	}

	// Record the completed prefix: each entry stamped with the cycle at
	// which its command started, so a log replay reproduces the trace.
	at := l.tb.Cycle() - cycles
	for i, out := range outcomes {
		l.log = append(l.log, LogEntry{Cycle: at, Command: cmds[i], Outcome: out})
		at += out.Cycles
	}
	if excess := len(l.log) - s.cfg.MaxLogEntries; excess > 0 {
		l.dropped += int64(excess)
		l.log = append(l.log[:0:0], l.log[excess:]...)
	}
	cycle := l.tb.Cycle()
	l.mu.Unlock()

	s.metrics.addWork(cycles, len(outcomes))
	if ferr := faultinject.Fire(faultinject.ConnDrop); ferr != nil {
		// Injected transport fault: the work above is done and logged, but
		// the client never hears about it — exactly the ambiguity the
		// client-side retry classifier must treat as non-idempotent.
		panic(http.ErrAbortHandler)
	}
	resp := CommandsResponse{Outcomes: outcomes, Cycle: cycle}
	switch {
	case execErr == nil:
		writeJSON(w, http.StatusOK, resp)
	case errors.Is(execErr, sim.ErrRunCanceled):
		resp.Error = execErr.Error()
		if ctx.Err() != nil {
			s.metrics.timedOut()
			resp.Kind = KindTimeout
			writeJSON(w, http.StatusGatewayTimeout, resp)
		} else {
			// A concurrent DELETE aborted the run; release is waiting on
			// l.mu to reclaim the engine.
			s.metrics.runCanceled()
			resp.Kind = KindCanceled
			writeJSON(w, http.StatusGone, resp)
		}
	default:
		resp.Error = execErr.Error()
		writeJSON(w, http.StatusUnprocessableEntity, resp)
	}
}

// handleLog serves GET /sessions/{id}/log: the recorded, replayable
// transaction log.
func (s *Server) handleLog(w http.ResponseWriter, r *http.Request) {
	l, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("server: unknown session"))
		return
	}
	l.mu.Lock()
	entries := make([]LogEntry, len(l.log))
	copy(entries, l.log)
	dropped := l.dropped
	l.mu.Unlock()
	writeJSON(w, http.StatusOK, LogResponse{SessionID: l.id, Dropped: dropped, Entries: entries})
}

// handleRelease serves DELETE /sessions/{id}.
func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	if !s.sessions.release(r.PathValue("id")) {
		writeError(w, http.StatusNotFound, errors.New("server: unknown session"))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleHealth serves GET /healthz: liveness only. It answers 200 for as
// long as the process serves HTTP — including during drain — so an
// orchestrator does not kill a pod that is busy finishing its work.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	cm, _ := s.cache.stats()
	sm := s.sessions.stats()
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok", Designs: cm.Entries, Sessions: sm.Live})
}

// handleReady serves GET /readyz: readiness. 503 while draining (new work
// is being rejected) and while the server is degraded — nothing cached and
// every compile attempt circuit-broken — so load balancers route around
// this replica without killing it.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	cm, _ := s.cache.stats()
	_, open := s.cache.breakerStats()
	resp := ReadyResponse{Draining: s.draining.Load(), Designs: cm.Entries, CircuitOpen: open}
	switch {
	case resp.Draining:
		resp.Status = "draining"
		w.Header().Set("Retry-After", retryAfterSecs(s.cfg.DrainRetryAfter))
		writeJSON(w, http.StatusServiceUnavailable, resp)
	case resp.Designs == 0 && open > 0:
		resp.Status = "degraded"
		writeJSON(w, http.StatusServiceUnavailable, resp)
	default:
		resp.Status = "ready"
		writeJSON(w, http.StatusOK, resp)
	}
}

// handleMetrics serves GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	cm, pools := s.cache.stats()
	work, fault, eps := s.metrics.snapshot()
	fault.SessionsQuarantined = s.sessions.quarantineCount()
	fault.CircuitTrips, fault.CircuitOpen = s.cache.breakerStats()
	fault.Draining = s.draining.Load()
	writeJSON(w, http.StatusOK, MetricsResponse{
		Cache:     cm,
		Sessions:  s.sessions.stats(),
		Work:      work,
		Fault:     fault,
		Pools:     pools,
		Endpoints: eps,
	})
}
