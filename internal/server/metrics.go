package server

import (
	"sync"
	"time"
)

// MetricsResponse answers GET /metrics: a JSON snapshot of every counter
// the service keeps — cache effectiveness, session churn, simulated work,
// per-design pool occupancy, and per-endpoint latency.
type MetricsResponse struct {
	Cache     CacheMetrics               `json:"cache"`
	Sessions  SessionMetrics             `json:"sessions"`
	Work      WorkMetrics                `json:"work"`
	Pools     map[string]PoolMetrics     `json:"pools"`
	Endpoints map[string]EndpointMetrics `json:"endpoints"`
}

// CacheMetrics reports the cross-user design cache.
type CacheMetrics struct {
	Entries int `json:"entries"`
	Max     int `json:"max"`
	// Hits counts requests served from an existing entry; Misses counts
	// compiles actually run; InflightDeduped counts callers who joined
	// another client's in-flight compile instead of running their own.
	Hits            uint64 `json:"hits"`
	Misses          uint64 `json:"misses"`
	Evictions       uint64 `json:"evictions"`
	InflightDeduped uint64 `json:"inflight_deduped"`
}

// PoolMetrics reports one design's elastic session pool.
type PoolMetrics struct {
	Cap        int    `json:"cap"`
	Idle       int    `json:"idle"`
	CheckedOut int    `json:"checked_out"`
	Live       int    `json:"live"`
	HighWater  int    `json:"high_water"`
	Checkouts  uint64 `json:"checkouts"`
	Reaped     uint64 `json:"reaped"`
}

// SessionMetrics reports lease churn across all designs.
type SessionMetrics struct {
	Live    int `json:"live"`
	Clients int `json:"clients"`
	// Created counts leases ever granted; Released counts explicit
	// DELETEs; Evicted counts idle-TTL reaps.
	Created  uint64 `json:"created"`
	Released uint64 `json:"released"`
	Evicted  uint64 `json:"evicted"`
}

// WorkMetrics reports the simulation work the service has executed.
type WorkMetrics struct {
	CyclesSimulated  uint64 `json:"cycles_simulated"`
	CommandsExecuted uint64 `json:"commands_executed"`
}

// EndpointMetrics reports one route's request latency.
type EndpointMetrics struct {
	Requests    uint64 `json:"requests"`
	Errors      uint64 `json:"errors"`
	TotalMicros int64  `json:"total_micros"`
	MaxMicros   int64  `json:"max_micros"`
}

// metrics is the service-wide counter set for work and latency; the cache
// and the session registry keep their own counters and are merged into the
// snapshot by the /metrics handler.
type metrics struct {
	mu               sync.Mutex
	endpoints        map[string]*EndpointMetrics
	cyclesSimulated  uint64
	commandsExecuted uint64
}

func newMetrics() *metrics {
	return &metrics{endpoints: make(map[string]*EndpointMetrics)}
}

// observe records one request against its route pattern.
func (m *metrics) observe(endpoint string, dur time.Duration, isErr bool) {
	micros := dur.Microseconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.endpoints[endpoint]
	if e == nil {
		e = &EndpointMetrics{}
		m.endpoints[endpoint] = e
	}
	e.Requests++
	if isErr {
		e.Errors++
	}
	e.TotalMicros += micros
	if micros > e.MaxMicros {
		e.MaxMicros = micros
	}
}

// addWork accounts a command batch's simulated cycles and command count.
func (m *metrics) addWork(cycles int64, commands int) {
	m.mu.Lock()
	m.cyclesSimulated += uint64(cycles)
	m.commandsExecuted += uint64(commands)
	m.mu.Unlock()
}

func (m *metrics) snapshot() (WorkMetrics, map[string]EndpointMetrics) {
	m.mu.Lock()
	defer m.mu.Unlock()
	eps := make(map[string]EndpointMetrics, len(m.endpoints))
	for k, v := range m.endpoints {
		eps[k] = *v
	}
	return WorkMetrics{CyclesSimulated: m.cyclesSimulated, CommandsExecuted: m.commandsExecuted}, eps
}
