package server

import (
	"sync"
	"time"
)

// MetricsResponse answers GET /metrics: a JSON snapshot of every counter
// the service keeps — cache effectiveness, session churn, simulated work,
// per-design pool occupancy, and per-endpoint latency.
type MetricsResponse struct {
	Cache     CacheMetrics               `json:"cache"`
	Sessions  SessionMetrics             `json:"sessions"`
	Work      WorkMetrics                `json:"work"`
	Fault     FaultMetrics               `json:"fault"`
	Pools     map[string]PoolMetrics     `json:"pools"`
	Endpoints map[string]EndpointMetrics `json:"endpoints"`
}

// CacheMetrics reports the cross-user design cache.
type CacheMetrics struct {
	Entries int `json:"entries"`
	Max     int `json:"max"`
	// Hits counts requests served from an existing entry; Misses counts
	// compiles actually run; InflightDeduped counts callers who joined
	// another client's in-flight compile instead of running their own.
	Hits            uint64 `json:"hits"`
	Misses          uint64 `json:"misses"`
	Evictions       uint64 `json:"evictions"`
	InflightDeduped uint64 `json:"inflight_deduped"`
}

// PoolMetrics reports one design's elastic session pool.
type PoolMetrics struct {
	Cap        int    `json:"cap"`
	Idle       int    `json:"idle"`
	CheckedOut int    `json:"checked_out"`
	Live       int    `json:"live"`
	HighWater  int    `json:"high_water"`
	Checkouts  uint64 `json:"checkouts"`
	Reaped     uint64 `json:"reaped"`
	// Discarded counts sessions quarantined after a fault instead of being
	// re-pooled; each one was replaced by fresh creation budget.
	Discarded uint64 `json:"discarded"`
}

// FaultMetrics reports the service's fault-handling activity: every
// counter here is a failure the server absorbed without going down.
type FaultMetrics struct {
	// PanicsRecovered counts panics caught at the exec boundary — compile,
	// session creation, or command execution — and converted to typed 500s.
	PanicsRecovered uint64 `json:"panics_recovered"`
	// Timeouts counts command lists or requests stopped by a deadline.
	Timeouts uint64 `json:"timeouts"`
	// Canceled counts runs aborted because their session was deleted
	// mid-flight.
	Canceled uint64 `json:"canceled"`
	// DrainRejected counts work turned away with 503 during shutdown drain.
	DrainRejected uint64 `json:"drain_rejected"`
	// SessionsQuarantined counts leases torn down because their engine
	// panicked; the pooled session behind each was discarded, not re-pooled.
	SessionsQuarantined uint64 `json:"sessions_quarantined"`
	// CircuitTrips counts compile circuit breakers tripped open;
	// CircuitOpen is how many design hashes are short-circuited right now.
	CircuitTrips uint64 `json:"circuit_trips"`
	CircuitOpen  int    `json:"circuit_open"`
	// Draining reports whether the server is in graceful shutdown.
	Draining bool `json:"draining"`
}

// SessionMetrics reports lease churn across all designs.
type SessionMetrics struct {
	Live    int `json:"live"`
	Clients int `json:"clients"`
	// Created counts leases ever granted; Released counts explicit
	// DELETEs; Evicted counts idle-TTL reaps.
	Created  uint64 `json:"created"`
	Released uint64 `json:"released"`
	Evicted  uint64 `json:"evicted"`
}

// WorkMetrics reports the simulation work the service has executed.
type WorkMetrics struct {
	CyclesSimulated  uint64 `json:"cycles_simulated"`
	CommandsExecuted uint64 `json:"commands_executed"`
}

// EndpointMetrics reports one route's request latency.
type EndpointMetrics struct {
	Requests    uint64 `json:"requests"`
	Errors      uint64 `json:"errors"`
	TotalMicros int64  `json:"total_micros"`
	MaxMicros   int64  `json:"max_micros"`
}

// metrics is the service-wide counter set for work and latency; the cache
// and the session registry keep their own counters and are merged into the
// snapshot by the /metrics handler.
type metrics struct {
	mu               sync.Mutex
	endpoints        map[string]*EndpointMetrics
	cyclesSimulated  uint64
	commandsExecuted uint64

	// Fault counters (see FaultMetrics); monotonic, guarded by mu. The
	// quarantine, breaker, and drain-state figures live with their owners
	// (session registry, design cache, server) and are merged by /metrics.
	panicsRecovered uint64
	timeouts        uint64
	canceled        uint64
	drainRejected   uint64
}

func newMetrics() *metrics {
	return &metrics{endpoints: make(map[string]*EndpointMetrics)}
}

// observe records one request against its route pattern.
func (m *metrics) observe(endpoint string, dur time.Duration, isErr bool) {
	micros := dur.Microseconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.endpoints[endpoint]
	if e == nil {
		e = &EndpointMetrics{}
		m.endpoints[endpoint] = e
	}
	e.Requests++
	if isErr {
		e.Errors++
	}
	e.TotalMicros += micros
	if micros > e.MaxMicros {
		e.MaxMicros = micros
	}
}

// addWork accounts a command batch's simulated cycles and command count.
func (m *metrics) addWork(cycles int64, commands int) {
	m.mu.Lock()
	m.cyclesSimulated += uint64(cycles)
	m.commandsExecuted += uint64(commands)
	m.mu.Unlock()
}

// Fault counter bumps; each maps to one field of FaultMetrics.
func (m *metrics) panicRecovered() { m.bump(&m.panicsRecovered) }
func (m *metrics) timedOut()       { m.bump(&m.timeouts) }
func (m *metrics) runCanceled()    { m.bump(&m.canceled) }
func (m *metrics) drainReject()    { m.bump(&m.drainRejected) }

func (m *metrics) bump(c *uint64) {
	m.mu.Lock()
	*c++
	m.mu.Unlock()
}

func (m *metrics) snapshot() (WorkMetrics, FaultMetrics, map[string]EndpointMetrics) {
	m.mu.Lock()
	defer m.mu.Unlock()
	eps := make(map[string]EndpointMetrics, len(m.endpoints))
	for k, v := range m.endpoints {
		eps[k] = *v
	}
	fm := FaultMetrics{
		PanicsRecovered: m.panicsRecovered,
		Timeouts:        m.timeouts,
		Canceled:        m.canceled,
		DrainRejected:   m.drainRejected,
	}
	return WorkMetrics{CyclesSimulated: m.cyclesSimulated, CommandsExecuted: m.commandsExecuted}, fm, eps
}
