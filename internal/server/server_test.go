package server_test

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"rteaal/internal/server"
	"rteaal/internal/testbench"
	"rteaal/sim"
	"rteaal/sim/client"
)

const counterSrc = `
circuit Counter :
  module Counter :
    input clock : Clock
    input reset : UInt<1>
    input step : UInt<4>
    output count : UInt<8>
    regreset c : UInt<8>, clock, reset, UInt<8>(0)
    c <= tail(add(c, pad(step, 8)), 1)
    count <= c
`

func newTestService(t *testing.T, cfg server.Config) (*server.Server, *client.Client) {
	t.Helper()
	srv := server.New(cfg)
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	// Retries off: these tests assert immediate error surfacing (429s and
	// friends must not be ridden out by the client's backoff loop).
	return srv, client.New(ts.URL, client.WithClientID("test"), client.WithoutRetry())
}

// refExec executes a wire command list against an in-process testbench
// through the public sim API only — the independent reference the HTTP
// path must match.
func refExec(t *testing.T, tb *sim.Testbench, cmds []testbench.Command) []testbench.Outcome {
	t.Helper()
	outs := make([]testbench.Outcome, 0, len(cmds))
	for _, c := range cmds {
		out := testbench.Outcome{Op: c.Op, Lane: c.Lane, Signal: c.Signal}
		before := tb.Cycle()
		switch c.Op {
		case testbench.OpPoke:
			p, err := tb.PortLane(c.Signal, c.Lane)
			if err != nil {
				t.Fatal(err)
			}
			p.Poke(c.Value)
			out.Value = c.Value
		case testbench.OpPeek:
			p, err := tb.PortLane(c.Signal, c.Lane)
			if err != nil {
				t.Fatal(err)
			}
			out.Value = p.Peek()
		case testbench.OpStep:
			if err := tb.Run(c.Cycles); err != nil {
				t.Fatal(err)
			}
		case testbench.OpTransact:
			out.Signal = c.Resp
			v, err := tb.TransactLane(c.Lane, c.Pokes, c.Resp, c.Until.Pred(), c.MaxCycles)
			if err != nil {
				t.Fatal(err)
			}
			out.Value = v
		case testbench.OpHandshake:
			out.Signal = c.Valid
			n, err := tb.HandshakeLane(c.Lane, c.Valid, c.Pokes, c.Ready, c.MaxCycles)
			if err != nil {
				t.Fatal(err)
			}
			out.Value = uint64(n)
		}
		out.Cycles = tb.Cycle() - before
		outs = append(outs, out)
	}
	return outs
}

// counterScript is the shared DMI script of the parity test: pokes, a
// multi-cycle run, peeks, and a transact, per lane.
func counterScript(lanes int) *client.Script {
	s := client.NewScript()
	for l := 0; l < lanes; l++ {
		s.PokeLane(l, "step", uint64(l+3))
	}
	s.Step(7)
	for l := 0; l < lanes; l++ {
		s.PeekLane(l, "count")
	}
	for l := 0; l < lanes; l++ {
		s.Add(testbench.Command{
			Op: testbench.OpTransact, Lane: l,
			Pokes:     map[string]uint64{"step": 1},
			Resp:      "count",
			Until:     &testbench.Cond{Test: testbench.CondNonzero},
			MaxCycles: 20,
		})
	}
	s.Step(3)
	for l := 0; l < lanes; l++ {
		s.PeekLane(l, "count")
	}
	return s
}

// TestWireParity is the golden-trace test: the same DMI script driven
// in-process through sim.Testbench and over HTTP through sim/client must
// produce identical outcome traces — for a scalar session, a
// RepCut-partitioned session (n=3), and a 3-lane batch.
func TestWireParity(t *testing.T) {
	cases := []struct {
		name  string
		opts  server.CompileOptions
		lanes int
	}{
		{"scalar", server.CompileOptions{}, 0},
		{"partitioned", server.CompileOptions{Partitions: 3}, 0},
		{"batch", server.CompileOptions{}, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, c := newTestService(t, server.Config{})
			ctx := context.Background()

			// Reference: the same compile options, in-process.
			simOpts, err := tc.opts.SimOptions()
			if err != nil {
				t.Fatal(err)
			}
			d, err := sim.Compile(counterSrc, simOpts...)
			if err != nil {
				t.Fatal(err)
			}
			var ref *sim.Testbench
			if tc.lanes > 0 {
				b, err := d.NewBatch(tc.lanes)
				if err != nil {
					t.Fatal(err)
				}
				defer b.Close()
				ref = b.Testbench()
			} else {
				ref = d.NewSession().Testbench()
			}

			script := counterScript(max(tc.lanes, 1))
			want := refExec(t, ref, script.Commands())

			// Wire path: compile, lease, execute the same script.
			cr, err := c.Compile(ctx, counterSrc, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			sess, err := c.NewSession(ctx, cr.Hash, tc.lanes)
			if err != nil {
				t.Fatal(err)
			}
			defer sess.Close(ctx)
			resp, err := sess.Do(ctx, script)
			if err != nil {
				t.Fatal(err)
			}

			if len(resp.Outcomes) != len(want) {
				t.Fatalf("wire returned %d outcomes, reference %d", len(resp.Outcomes), len(want))
			}
			for i := range want {
				if resp.Outcomes[i] != want[i] {
					t.Errorf("outcome %d: wire %+v, reference %+v", i, resp.Outcomes[i], want[i])
				}
			}
			if resp.Cycle != ref.Cycle() {
				t.Errorf("wire cycle %d, reference %d", resp.Cycle, ref.Cycle())
			}

			// The recorded log replays to the same trace on a fresh
			// in-process testbench of the same design.
			lg, err := sess.Log(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if lg.Dropped != 0 || len(lg.Entries) != len(want) {
				t.Fatalf("log: %d entries (dropped %d), want %d", len(lg.Entries), lg.Dropped, len(want))
			}
			var fresh *sim.Testbench
			if tc.lanes > 0 {
				b, err := d.NewBatch(tc.lanes)
				if err != nil {
					t.Fatal(err)
				}
				defer b.Close()
				fresh = b.Testbench()
			} else {
				fresh = d.NewSession().Testbench()
			}
			replay := make([]testbench.Command, len(lg.Entries))
			for i, e := range lg.Entries {
				replay[i] = e.Command
			}
			got := refExec(t, fresh, replay)
			for i := range want {
				if got[i] != lg.Entries[i].Outcome {
					t.Errorf("replayed outcome %d: %+v, log recorded %+v", i, got[i], lg.Entries[i].Outcome)
				}
			}

			// A clean parity run must not have tripped any of the fault
			// machinery: no recovered panics, timeouts, cancellations,
			// drain rejections, quarantines, or open breakers.
			m, err := c.Metrics(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if f := m.Fault; f.PanicsRecovered != 0 || f.Timeouts != 0 || f.Canceled != 0 ||
				f.DrainRejected != 0 || f.SessionsQuarantined != 0 ||
				f.CircuitTrips != 0 || f.CircuitOpen != 0 || f.Draining {
				t.Errorf("fault metrics after clean run: %+v", m.Fault)
			}
			for h, pm := range m.Pools {
				if pm.Discarded != 0 {
					t.Errorf("pool %s discarded %d sessions on a clean run", h, pm.Discarded)
				}
			}
		})
	}
}

// TestCacheSingleFlight posts the identical source from many concurrent
// clients: the cache must end with exactly one entry and exactly one
// compile (misses == 1), everyone else served as a hit or by joining the
// in-flight compile.
func TestCacheSingleFlight(t *testing.T) {
	_, c := newTestService(t, server.Config{})
	ctx := context.Background()

	const n = 12
	hashes := make([]string, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := c.Compile(ctx, counterSrc, server.CompileOptions{})
			if err != nil {
				errs[i] = err
				return
			}
			hashes[i] = resp.Hash
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("compile %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if hashes[i] != hashes[0] {
			t.Fatalf("hash diverged: %s vs %s", hashes[i], hashes[0])
		}
	}

	// One more serial compile must be a plain cache hit.
	resp, err := c.Compile(ctx, counterSrc, server.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Error("serial recompile was not served from cache")
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cache.Entries != 1 {
		t.Errorf("cache entries = %d, want 1", m.Cache.Entries)
	}
	if m.Cache.Misses != 1 {
		t.Errorf("cache misses = %d, want exactly 1 compile", m.Cache.Misses)
	}
	if m.Cache.Hits+m.Cache.InflightDeduped != n {
		t.Errorf("hits(%d) + deduped(%d) = %d, want %d non-compiling clients",
			m.Cache.Hits, m.Cache.InflightDeduped, m.Cache.Hits+m.Cache.InflightDeduped, n)
	}

	// Different compile options are a different design identity.
	part, err := c.Compile(ctx, counterSrc, server.CompileOptions{Partitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	if part.Hash == hashes[0] {
		t.Error("partitioned compile shares the unpartitioned hash")
	}
	if part.Cached {
		t.Error("partitioned compile claimed a cache hit")
	}
}

// TestConcurrentClients drives 16 goroutine clients against one shared
// design: each repeatedly leases a session (riding out 429 backpressure),
// runs a script, checks the deterministic result, and releases. Run under
// -race this is the wire layer's data-race test.
func TestConcurrentClients(t *testing.T) {
	_, base := newTestService(t, server.Config{PoolCap: 4, MaxSessionsPerClient: 2})
	ctx := context.Background()

	cr, err := base.Compile(ctx, counterSrc, server.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}

	const clients = 16
	const rounds = 4
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := client.New(base.BaseURL(), client.WithClientID(fmt.Sprintf("client-%d", i)), client.WithoutRetry())
			step := uint64(i%7 + 1)
			for r := 0; r < rounds; r++ {
				var sess *client.Session
				for {
					var err error
					sess, err = c.NewSession(ctx, cr.Hash, 0)
					if err == nil {
						break
					}
					var apiErr *client.APIError
					if errors.As(err, &apiErr) && apiErr.Status == 429 {
						time.Sleep(time.Millisecond)
						continue
					}
					errCh <- fmt.Errorf("client %d: %w", i, err)
					return
				}
				resp, err := sess.Do(ctx, client.NewScript().
					Poke("step", step).Step(8).Peek("count"))
				if err != nil {
					errCh <- fmt.Errorf("client %d: %w", i, err)
					return
				}
				got := resp.Outcomes[len(resp.Outcomes)-1].Value
				// Pooled sessions are Reset on Put, so every lease sees
				// a fresh design: the count is a pure function of step.
				want := refCount(step)
				if got != want {
					errCh <- fmt.Errorf("client %d round %d: count = %d, want %d", i, r, got, want)
					return
				}
				if err := sess.Close(ctx); err != nil {
					errCh <- fmt.Errorf("client %d: close: %w", i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	m, err := base.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Sessions.Live != 0 {
		t.Errorf("%d sessions leaked", m.Sessions.Live)
	}
	if m.Sessions.Created == 0 || m.Sessions.Released != m.Sessions.Created {
		t.Errorf("session churn inconsistent: %+v", m.Sessions)
	}
}

// refCount computes the counter value the shared concurrent-client script
// must observe, using an in-process session as the oracle.
var refCountOnce sync.Once
var refCountDesign *sim.Design

func refCount(step uint64) uint64 {
	refCountOnce.Do(func() {
		d, err := sim.Compile(counterSrc)
		if err != nil {
			panic(err)
		}
		refCountDesign = d
	})
	tb := refCountDesign.NewSession().Testbench()
	p, err := tb.Port("step")
	if err != nil {
		panic(err)
	}
	p.Poke(step)
	if err := tb.Run(8); err != nil {
		panic(err)
	}
	out, err := tb.Port("count")
	if err != nil {
		panic(err)
	}
	return out.Peek()
}

// TestSessionTTLAndPoolReap drives the elastic lifecycle with a fake
// clock: an abandoned lease is evicted after SessionTTL, its engine goes
// back to the pool as idle, and after PoolIdleTTL the pool itself shrinks
// — the reaped counter moves and the live session count drops.
func TestSessionTTLAndPoolReap(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1_000_000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}

	srv, c := newTestService(t, server.Config{
		SessionTTL:  time.Minute,
		PoolIdleTTL: 30 * time.Second,
		Clock:       clock,
	})
	ctx := context.Background()

	cr, err := c.Compile(ctx, counterSrc, server.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := c.NewSession(ctx, cr.Hash, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Within the TTL nothing is evicted.
	advance(30 * time.Second)
	if leases, _ := srv.Sweep(); leases != 0 {
		t.Fatalf("swept %d leases before the TTL", leases)
	}
	if _, err := sess.Do(ctx, client.NewScript().Step(1)); err != nil {
		t.Fatalf("session died before its TTL: %v", err)
	}

	// Past the TTL the abandoned lease is evicted; commands answer 404.
	advance(2 * time.Minute)
	leases, _ := srv.Sweep()
	if leases != 1 {
		t.Fatalf("swept %d leases, want 1", leases)
	}
	var apiErr *client.APIError
	if _, err := sess.Do(ctx, client.NewScript().Step(1)); !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Fatalf("evicted session answered %v, want a 404", err)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Sessions.Evicted != 1 || m.Sessions.Live != 0 {
		t.Fatalf("session metrics after eviction: %+v", m.Sessions)
	}
	// The engine went back to the pool as idle, stamped at eviction time.
	if pm := m.Pools[cr.Hash]; pm.Live != 1 || pm.CheckedOut != 0 {
		t.Fatalf("pool after eviction: %+v", pm)
	}

	// Past the pool idle TTL the pooled engine itself is reaped.
	advance(31 * time.Second)
	if _, pooled := srv.Sweep(); pooled != 1 {
		t.Fatalf("pool reaped %d sessions, want 1", pooled)
	}
	m, err = c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if pm := m.Pools[cr.Hash]; pm.Live != 0 || pm.Reaped != 1 {
		t.Fatalf("pool after reap: %+v", pm)
	}
	// The creation budget returned: a new lease still works.
	again, err := c.NewSession(ctx, cr.Hash, 0)
	if err != nil {
		t.Fatalf("lease after reap: %v", err)
	}
	again.Close(ctx)
}

// TestBackpressure checks the two saturation answers: pool exhaustion and
// the per-client session bound both answer 429 with a Retry-After hint.
func TestBackpressure(t *testing.T) {
	_, c := newTestService(t, server.Config{PoolCap: 2, MaxSessionsPerClient: 8})
	ctx := context.Background()
	cr, err := c.Compile(ctx, counterSrc, server.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}

	s1, err := c.NewSession(ctx, cr.Hash, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.NewSession(ctx, cr.Hash, 0); err != nil {
		t.Fatal(err)
	}
	var apiErr *client.APIError
	if _, err := c.NewSession(ctx, cr.Hash, 0); !errors.As(err, &apiErr) || apiErr.Status != 429 {
		t.Fatalf("exhausted pool answered %v, want 429", err)
	}
	// Releasing one frees capacity immediately.
	if err := s1.Close(ctx); err != nil {
		t.Fatal(err)
	}
	s3, err := c.NewSession(ctx, cr.Hash, 0)
	if err != nil {
		t.Fatalf("lease after release: %v", err)
	}
	s3.Close(ctx)

	// Per-client bound, independent of pool capacity.
	_, c2 := newTestService(t, server.Config{PoolCap: 8, MaxSessionsPerClient: 1})
	cr2, err := c2.Compile(ctx, counterSrc, server.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.NewSession(ctx, cr2.Hash, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.NewSession(ctx, cr2.Hash, 0); !errors.As(err, &apiErr) || apiErr.Status != 429 {
		t.Fatalf("per-client bound answered %v, want 429", err)
	}
}

// TestWireErrors covers the error surface: unknown design, unknown
// session, malformed command lists, and a failing command answering 422
// with the completed prefix while the session stays usable.
func TestWireErrors(t *testing.T) {
	_, c := newTestService(t, server.Config{})
	ctx := context.Background()

	var apiErr *client.APIError
	if _, err := c.Design(ctx, "feedfacedeadbeef"); !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Errorf("unknown design answered %v, want 404", err)
	}
	if _, err := c.NewSession(ctx, "feedfacedeadbeef", 0); !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Errorf("session of unknown design answered %v, want 404", err)
	}

	// Compile rejection: garbage source is a 422, not a cache entry.
	if _, err := c.Compile(ctx, "circuit Broken :\n  nonsense\n", server.CompileOptions{}); !errors.As(err, &apiErr) || apiErr.Status != 422 {
		t.Errorf("broken source answered %v, want 422", err)
	}
	if _, err := c.Compile(ctx, counterSrc, server.CompileOptions{Kernel: "XX"}); !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Errorf("unknown kernel answered %v, want 400", err)
	}

	cr, err := c.Compile(ctx, counterSrc, server.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := c.NewSession(ctx, cr.Hash, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close(ctx)

	// A script that fails mid-way: the first two commands execute, the
	// unknown signal fails, and the response carries the prefix.
	resp, err := sess.Do(ctx, client.NewScript().
		Poke("step", 1).Step(2).Peek("no_such_signal"))
	if !errors.As(err, &apiErr) || apiErr.Status != 422 {
		t.Fatalf("bad signal answered %v, want 422", err)
	}
	if resp == nil || len(resp.Outcomes) != 2 {
		t.Fatalf("partial outcomes = %+v, want the 2-command prefix", resp)
	}
	// The session survived and kept its state.
	ok, err := sess.Do(ctx, client.NewScript().Peek("count"))
	if err != nil {
		t.Fatalf("session unusable after a failed command: %v", err)
	}
	if ok.Cycle != 2 {
		t.Errorf("cycle after failed batch = %d, want 2", ok.Cycle)
	}

	// Unknown session and double release.
	if _, err := c.NewSession(ctx, cr.Hash, -1); !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Errorf("negative lanes answered %v, want 400", err)
	}
	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(ctx); !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Errorf("double release answered %v, want 404", err)
	}
}

// TestClientWaitExactCycle exercises the server-side wait: the condition
// travels the wire as one command, rides the engine's early-stop watch,
// and the session halts at the exact cycle the condition first holds — no
// chunk overshoot — with one HTTP round-trip per wait. A never-true
// condition times out after exactly maxCycles, answering 422 with the
// budget consumed.
func TestClientWaitExactCycle(t *testing.T) {
	_, c := newTestService(t, server.Config{})
	ctx := context.Background()
	cr, err := c.Compile(ctx, counterSrc, server.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := c.NewSession(ctx, cr.Hash, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close(ctx)
	if _, err := sess.Do(ctx, client.NewScript().Poke("step", 1)); err != nil {
		t.Fatal(err)
	}
	// count samples at settle: after n cycles it reads n-1. The condition
	// count >= 10 first holds at n = 11, and the wait must stop exactly
	// there, observing 10 — not the 15 a chunked client-side poll with
	// chunk = 8 used to report.
	v, err := sess.Wait(ctx, 0, "count", &testbench.Cond{Test: testbench.CondGeq, Value: 10}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if v != 10 {
		t.Errorf("Wait observed %d, want exactly 10", v)
	}
	resp, err := sess.Do(ctx, client.NewScript().Peek("count"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cycle != 11 {
		t.Errorf("cycle after wait = %d, want exactly 11 (no chunk overshoot)", resp.Cycle)
	}

	// A second wait resumes from the session's state and again stops at the
	// first accepting cycle.
	v, err = sess.Wait(ctx, 0, "count", &testbench.Cond{Test: testbench.CondEq, Value: 20}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if v != 20 {
		t.Errorf("second Wait observed %d, want 20", v)
	}
	if resp, err = sess.Do(ctx, client.NewScript().Peek("count")); err != nil {
		t.Fatal(err)
	}
	if resp.Cycle != 21 {
		t.Errorf("cycle after second wait = %d, want 21", resp.Cycle)
	}

	// Timeout: an impossible condition consumes exactly the budget and
	// surfaces the server's command error.
	var apiErr *client.APIError
	if _, err := sess.Wait(ctx, 0, "count", &testbench.Cond{Test: testbench.CondLt, Value: 5}, 12); !errors.As(err, &apiErr) || apiErr.Status != 422 {
		t.Fatalf("impossible condition answered %v, want 422", err)
	}
	if resp, err = sess.Do(ctx, client.NewScript().Peek("count")); err != nil {
		t.Fatal(err)
	}
	if resp.Cycle != 33 {
		t.Errorf("cycle after timed-out wait = %d, want 33 (21 + the 12-cycle budget)", resp.Cycle)
	}

	// The wire validator rejects a wait beyond the server's per-command
	// budget outright.
	if _, err := sess.Wait(ctx, 0, "count", nil, 2_000_000); !errors.As(err, &apiErr) || apiErr.Status != 422 {
		t.Fatalf("over-budget wait answered %v, want 422", err)
	}
}
