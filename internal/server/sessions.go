package server

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"rteaal/internal/faultinject"
	"rteaal/sim"
)

// errClientLimit is the per-client elasticity bound: one tenant cannot
// hoard every session of a shared design. Mapped to 429 on the wire.
var errClientLimit = errors.New("server: per-client session limit reached")

// errLeaseGone marks a lease released or evicted while a request was in
// flight. Mapped to 410 on the wire.
var errLeaseGone = errors.New("server: session released")

// lease is one live remote session: a checked-out pooled session (or a
// dedicated multi-lane batch), its testbench, and the recorded transaction
// log. Command execution serialises on mu — the wire protocol promises
// in-order execution per session, never concurrent access to one engine.
type lease struct {
	id     string
	client string
	entry  *cacheEntry
	tb     *sim.Testbench
	sess   *sim.Session // pooled scalar/partitioned session; nil for batches
	batch  *sim.Batch   // multi-lane batch; nil for pooled sessions

	// abort asks an in-flight command batch to stop at its next chunk
	// boundary. release sets it before waiting on mu, so a DELETE (or TTL
	// eviction, or shutdown) of a session mid-run cancels the run instead
	// of queueing behind megacycles of simulation.
	abort atomic.Bool

	mu      sync.Mutex // serialises execution and release
	gone    bool       // released or evicted; engine no longer owned
	log     []LogEntry
	dropped int64
}

// release returns the lease's engine: pooled sessions go back to the pool
// (which retires them if it has closed), batches close their workers.
// An in-flight command batch is asked to cancel first (see abort); release
// then waits for it to unwind before reclaiming the engine. Idempotent
// under l.mu.
func (l *lease) release() {
	l.abort.Store(true)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.gone {
		return
	}
	l.gone = true
	if l.sess != nil {
		l.entry.pool.Put(l.sess)
	}
	if l.batch != nil {
		l.batch.Close()
	}
}

// sessionRegistry owns every live lease: creation against the per-client
// bound and the design's pool, lookup, touch-on-use, TTL-based eviction of
// abandoned leases, and release. The registry clock is injectable so tests
// drive eviction with a fake clock.
type sessionRegistry struct {
	maxPerClient int
	maxLanes     int
	ttl          time.Duration
	now          func() time.Time

	mu       sync.Mutex
	leases   map[string]*lease
	lastUsed map[string]time.Time
	byClient map[string]int
	nextID   uint64

	created, released, evicted, quarantined uint64
}

func newSessionRegistry(maxPerClient, maxLanes int, ttl time.Duration, now func() time.Time) *sessionRegistry {
	return &sessionRegistry{
		maxPerClient: maxPerClient,
		maxLanes:     maxLanes,
		ttl:          ttl,
		now:          now,
		leases:       make(map[string]*lease),
		lastUsed:     make(map[string]time.Time),
		byClient:     make(map[string]int),
	}
}

// create leases a new session of entry's design for client. lanes == 0
// checks a scalar session out of the design's elastic pool; lanes > 0
// mints a dedicated multi-lane batch. With wait == 0 pool saturation
// surfaces immediately as sim.ErrPoolExhausted (the 429 path); wait > 0
// blocks up to that long (bounded additionally by ctx) for a session to
// free up before giving up the same way. Instantiation runs inside a
// recovery boundary: a panic minting the engine unwinds as a *panicFault
// with the per-client reservation returned, never a leaked slot.
func (r *sessionRegistry) create(ctx context.Context, entry *cacheEntry, client string, lanes int, wait time.Duration) (_ *lease, err error) {
	if lanes < 0 || lanes > r.maxLanes {
		return nil, fmt.Errorf("server: lanes must be in [0,%d], got %d", r.maxLanes, lanes)
	}
	r.mu.Lock()
	if r.byClient[client] >= r.maxPerClient {
		r.mu.Unlock()
		return nil, errClientLimit
	}
	r.byClient[client]++ // reserve the slot before the pool work
	r.mu.Unlock()

	reserved := true
	unreserve := func() {
		r.mu.Lock()
		r.byClient[client]--
		if r.byClient[client] == 0 {
			delete(r.byClient, client)
		}
		r.mu.Unlock()
	}
	defer func() {
		if rec := recover(); rec != nil {
			err = &panicFault{val: rec, stack: debug.Stack()}
		}
		if err != nil && reserved {
			unreserve()
		}
	}()

	if ferr := faultinject.Fire(faultinject.SessionPanic); ferr != nil {
		panic(ferr)
	}
	if ferr := faultinject.Fire(faultinject.PoolExhausted); ferr != nil {
		return nil, sim.ErrPoolExhausted
	}

	l := &lease{client: client, entry: entry}
	if lanes > 0 {
		l.batch, err = entry.design.NewBatch(lanes)
		if err == nil {
			l.tb = l.batch.Testbench()
		}
	} else {
		if wait > 0 {
			wctx, cancel := context.WithTimeout(ctx, wait)
			l.sess, err = entry.pool.Get(wctx)
			cancel()
			if err != nil && (errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)) {
				// The bounded wait elapsed without a free session: same
				// backpressure signal as the non-blocking path.
				err = sim.ErrPoolExhausted
			}
		} else {
			l.sess, err = entry.pool.TryGet()
		}
		if err == nil {
			l.tb = l.sess.Testbench()
		}
	}
	if err != nil {
		return nil, err
	}

	r.mu.Lock()
	r.nextID++
	l.id = fmt.Sprintf("s-%08x", r.nextID)
	r.leases[l.id] = l
	r.lastUsed[l.id] = r.now()
	r.created++
	r.mu.Unlock()
	reserved = false // ownership transferred to the registered lease
	return l, nil
}

// get returns a live lease and refreshes its idle deadline.
func (r *sessionRegistry) get(id string) (*lease, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	l, ok := r.leases[id]
	if ok {
		r.lastUsed[id] = r.now()
	}
	return l, ok
}

// removeLocked unlinks a lease from the maps (not the engine).
func (r *sessionRegistry) removeLocked(l *lease) {
	delete(r.leases, l.id)
	delete(r.lastUsed, l.id)
	r.byClient[l.client]--
	if r.byClient[l.client] == 0 {
		delete(r.byClient, l.client)
	}
}

// forget unlinks a quarantined lease from the registry without touching
// its engine: the caller has already decided the engine is suspect and
// disposed of it (Pool.Discard / Batch.Close) under the lease's own mu.
// Safe to call for a lease that a concurrent release/reap already removed.
func (r *sessionRegistry) forget(l *lease) {
	r.mu.Lock()
	if _, ok := r.leases[l.id]; ok {
		r.removeLocked(l)
		r.quarantined++
	}
	r.mu.Unlock()
}

// release ends a lease explicitly (DELETE /sessions/{id}).
func (r *sessionRegistry) release(id string) bool {
	r.mu.Lock()
	l, ok := r.leases[id]
	if ok {
		r.removeLocked(l)
		r.released++
	}
	r.mu.Unlock()
	if !ok {
		return false
	}
	l.release()
	return true
}

// reapExpired evicts every lease idle past the TTL, returning engines to
// their pools. This is what makes the serving layer elastic against
// clients that vanish without a DELETE.
func (r *sessionRegistry) reapExpired() int {
	cutoff := r.now().Add(-r.ttl)
	r.mu.Lock()
	var expired []*lease
	for id, l := range r.leases {
		if !r.lastUsed[id].After(cutoff) {
			expired = append(expired, l)
		}
	}
	for _, l := range expired {
		r.removeLocked(l)
		r.evicted++
	}
	r.mu.Unlock()
	// Engine teardown outside the registry lock: release waits on each
	// lease's own mu, so an in-flight command batch finishes first.
	for _, l := range expired {
		l.release()
	}
	return len(expired)
}

// closeAll releases every lease (server shutdown).
func (r *sessionRegistry) closeAll() {
	r.mu.Lock()
	all := make([]*lease, 0, len(r.leases))
	for _, l := range r.leases {
		all = append(all, l)
	}
	r.leases = make(map[string]*lease)
	r.lastUsed = make(map[string]time.Time)
	r.byClient = make(map[string]int)
	r.mu.Unlock()
	for _, l := range all {
		l.release()
	}
}

// quarantineCount reports leases torn down via forget (for FaultMetrics).
func (r *sessionRegistry) quarantineCount() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.quarantined
}

// stats snapshots the session counters.
func (r *sessionRegistry) stats() SessionMetrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	return SessionMetrics{
		Live:     len(r.leases),
		Clients:  len(r.byClient),
		Created:  r.created,
		Released: r.released,
		Evicted:  r.evicted,
	}
}
