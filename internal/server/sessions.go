package server

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"rteaal/sim"
)

// errClientLimit is the per-client elasticity bound: one tenant cannot
// hoard every session of a shared design. Mapped to 429 on the wire.
var errClientLimit = errors.New("server: per-client session limit reached")

// errLeaseGone marks a lease released or evicted while a request was in
// flight. Mapped to 410 on the wire.
var errLeaseGone = errors.New("server: session released")

// lease is one live remote session: a checked-out pooled session (or a
// dedicated multi-lane batch), its testbench, and the recorded transaction
// log. Command execution serialises on mu — the wire protocol promises
// in-order execution per session, never concurrent access to one engine.
type lease struct {
	id     string
	client string
	entry  *cacheEntry
	tb     *sim.Testbench
	sess   *sim.Session // pooled scalar/partitioned session; nil for batches
	batch  *sim.Batch   // multi-lane batch; nil for pooled sessions

	mu      sync.Mutex // serialises execution and release
	gone    bool       // released or evicted; engine no longer owned
	log     []LogEntry
	dropped int64
}

// release returns the lease's engine: pooled sessions go back to the pool
// (which retires them if it has closed), batches close their workers.
// Idempotent under l.mu.
func (l *lease) release() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.gone {
		return
	}
	l.gone = true
	if l.sess != nil {
		l.entry.pool.Put(l.sess)
	}
	if l.batch != nil {
		l.batch.Close()
	}
}

// sessionRegistry owns every live lease: creation against the per-client
// bound and the design's pool, lookup, touch-on-use, TTL-based eviction of
// abandoned leases, and release. The registry clock is injectable so tests
// drive eviction with a fake clock.
type sessionRegistry struct {
	maxPerClient int
	maxLanes     int
	ttl          time.Duration
	now          func() time.Time

	mu       sync.Mutex
	leases   map[string]*lease
	lastUsed map[string]time.Time
	byClient map[string]int
	nextID   uint64

	created, released, evicted uint64
}

func newSessionRegistry(maxPerClient, maxLanes int, ttl time.Duration, now func() time.Time) *sessionRegistry {
	return &sessionRegistry{
		maxPerClient: maxPerClient,
		maxLanes:     maxLanes,
		ttl:          ttl,
		now:          now,
		leases:       make(map[string]*lease),
		lastUsed:     make(map[string]time.Time),
		byClient:     make(map[string]int),
	}
}

// create leases a new session of entry's design for client. lanes == 0
// checks a scalar session out of the design's elastic pool (non-blocking:
// saturation surfaces as sim.ErrPoolExhausted for the 429 path); lanes > 0
// mints a dedicated multi-lane batch.
func (r *sessionRegistry) create(entry *cacheEntry, client string, lanes int) (*lease, error) {
	if lanes < 0 || lanes > r.maxLanes {
		return nil, fmt.Errorf("server: lanes must be in [0,%d], got %d", r.maxLanes, lanes)
	}
	r.mu.Lock()
	if r.byClient[client] >= r.maxPerClient {
		r.mu.Unlock()
		return nil, errClientLimit
	}
	r.byClient[client]++ // reserve the slot before the pool work
	r.mu.Unlock()

	l := &lease{client: client, entry: entry}
	var err error
	if lanes > 0 {
		l.batch, err = entry.design.NewBatch(lanes)
		if err == nil {
			l.tb = l.batch.Testbench()
		}
	} else {
		l.sess, err = entry.pool.TryGet()
		if err == nil {
			l.tb = l.sess.Testbench()
		}
	}
	if err != nil {
		r.mu.Lock()
		r.byClient[client]--
		if r.byClient[client] == 0 {
			delete(r.byClient, client)
		}
		r.mu.Unlock()
		return nil, err
	}

	r.mu.Lock()
	r.nextID++
	l.id = fmt.Sprintf("s-%08x", r.nextID)
	r.leases[l.id] = l
	r.lastUsed[l.id] = r.now()
	r.created++
	r.mu.Unlock()
	return l, nil
}

// get returns a live lease and refreshes its idle deadline.
func (r *sessionRegistry) get(id string) (*lease, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	l, ok := r.leases[id]
	if ok {
		r.lastUsed[id] = r.now()
	}
	return l, ok
}

// removeLocked unlinks a lease from the maps (not the engine).
func (r *sessionRegistry) removeLocked(l *lease) {
	delete(r.leases, l.id)
	delete(r.lastUsed, l.id)
	r.byClient[l.client]--
	if r.byClient[l.client] == 0 {
		delete(r.byClient, l.client)
	}
}

// release ends a lease explicitly (DELETE /sessions/{id}).
func (r *sessionRegistry) release(id string) bool {
	r.mu.Lock()
	l, ok := r.leases[id]
	if ok {
		r.removeLocked(l)
		r.released++
	}
	r.mu.Unlock()
	if !ok {
		return false
	}
	l.release()
	return true
}

// reapExpired evicts every lease idle past the TTL, returning engines to
// their pools. This is what makes the serving layer elastic against
// clients that vanish without a DELETE.
func (r *sessionRegistry) reapExpired() int {
	cutoff := r.now().Add(-r.ttl)
	r.mu.Lock()
	var expired []*lease
	for id, l := range r.leases {
		if !r.lastUsed[id].After(cutoff) {
			expired = append(expired, l)
		}
	}
	for _, l := range expired {
		r.removeLocked(l)
		r.evicted++
	}
	r.mu.Unlock()
	// Engine teardown outside the registry lock: release waits on each
	// lease's own mu, so an in-flight command batch finishes first.
	for _, l := range expired {
		l.release()
	}
	return len(expired)
}

// closeAll releases every lease (server shutdown).
func (r *sessionRegistry) closeAll() {
	r.mu.Lock()
	all := make([]*lease, 0, len(r.leases))
	for _, l := range r.leases {
		all = append(all, l)
	}
	r.leases = make(map[string]*lease)
	r.lastUsed = make(map[string]time.Time)
	r.byClient = make(map[string]int)
	r.mu.Unlock()
	for _, l := range all {
		l.release()
	}
}

// stats snapshots the session counters.
func (r *sessionRegistry) stats() SessionMetrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	return SessionMetrics{
		Live:     len(r.leases),
		Clients:  len(r.byClient),
		Created:  r.created,
		Released: r.released,
		Evicted:  r.evicted,
	}
}
