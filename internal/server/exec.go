package server

import (
	"errors"
	"fmt"
	"runtime/debug"

	"rteaal/internal/faultinject"
	"rteaal/internal/testbench"
	"rteaal/sim"
)

// panicFault is a recovered panic carried as an error through the exec
// layer so handlers can map it to a typed 500 and quarantine the resource
// it escaped from. The stack is captured at the recovery site.
type panicFault struct {
	val   any
	stack []byte
}

func (p *panicFault) Error() string { return fmt.Sprintf("panic: %v", p.val) }

// asPanicFault unwraps err to a *panicFault if one is in the chain.
// Kernel-level worker panics (kernel.WorkerPanic) surface as real panics
// re-raised on the dispatching goroutine and are caught by the recover in
// runCommandsRecover, so a single type covers both origins here.
func asPanicFault(err error) (*panicFault, bool) {
	var pf *panicFault
	if err != nil && errors.As(err, &pf) {
		return pf, true
	}
	return nil, false
}

// runCommandsRecover is the panic boundary for command execution: a panic
// anywhere in the batch — a kernel worker fault re-raised by the dispatch
// join, or a bug in the exec path itself — is converted to a *panicFault
// error instead of unwinding into the HTTP stack. The outcomes and cycle
// count accumulated before the panic are lost by design: a panicked engine's
// state is suspect, so the caller quarantines the session rather than
// reporting a prefix.
func runCommandsRecover(tb *sim.Testbench, cmds []testbench.Command, maxCyclesPerCommand int64) (outcomes []testbench.Outcome, cycles int64, err error) {
	defer func() {
		if r := recover(); r != nil {
			outcomes, cycles = nil, 0
			err = &panicFault{val: r, stack: debug.Stack()}
		}
	}()
	if ferr := faultinject.Fire(faultinject.RunPanic); ferr != nil {
		panic(ferr)
	}
	if ferr := faultinject.Fire(faultinject.SlowRun); ferr != nil {
		// SlowRun hooks sleep inside Fire; an error return additionally
		// fails the batch, letting tests model a stall that errors out.
		return nil, 0, ferr
	}
	return runCommands(tb, cmds, maxCyclesPerCommand)
}

// runCommands executes a validated wire command batch in order against a
// session's testbench, returning one Outcome per completed command and the
// total cycles the batch consumed. Execution stops at the first failing
// command (unknown signal, wait timeout, bad lane); the completed prefix
// and its outcomes are still returned — the engine state they produced is
// real, so the client sees exactly how far the batch got.
//
// maxCyclesPerCommand is the server's cycle-budget policy: step counts and
// transact/handshake budgets beyond it are rejected rather than clamped,
// so a client is told about the policy instead of silently getting a
// shorter wait.
//
// Step and transact/handshake commands compile to bulk engine runs through
// [sim.Testbench.Run] and the port Wait fast path: a step-k or a long
// transact costs one worker dispatch on the session's engine, not k
// Go-level round-trips — per-cycle dispatch overhead on the serve path is
// paid per command, not per simulated cycle.
func runCommands(tb *sim.Testbench, cmds []testbench.Command, maxCyclesPerCommand int64) ([]testbench.Outcome, int64, error) {
	outcomes := make([]testbench.Outcome, 0, len(cmds))
	start := tb.Cycle()
	for i := range cmds {
		c := &cmds[i]
		out := testbench.Outcome{Op: c.Op, Lane: c.Lane, Signal: c.Signal}
		before := tb.Cycle()
		var err error
		switch c.Op {
		case testbench.OpPoke:
			var p *sim.Port
			if p, err = tb.PortLane(c.Signal, c.Lane); err == nil {
				p.Poke(c.Value)
				out.Value = c.Value
			}
		case testbench.OpPeek:
			var p *sim.Port
			if p, err = tb.PortLane(c.Signal, c.Lane); err == nil {
				out.Value = p.Peek()
			}
		case testbench.OpStep:
			if c.Cycles > maxCyclesPerCommand {
				err = fmt.Errorf("step of %d cycles exceeds the per-command budget of %d", c.Cycles, maxCyclesPerCommand)
			} else {
				err = tb.Run(c.Cycles)
			}
		case testbench.OpTransact:
			out.Signal = c.Resp
			if int64(c.MaxCycles) > maxCyclesPerCommand {
				err = fmt.Errorf("transact budget of %d cycles exceeds the per-command budget of %d", c.MaxCycles, maxCyclesPerCommand)
			} else {
				out.Value, err = tb.TransactLane(c.Lane, c.Pokes, c.Resp, c.Until.Pred(), c.MaxCycles)
			}
		case testbench.OpHandshake:
			out.Signal = c.Valid
			if int64(c.MaxCycles) > maxCyclesPerCommand {
				err = fmt.Errorf("handshake budget of %d cycles exceeds the per-command budget of %d", c.MaxCycles, maxCyclesPerCommand)
			} else {
				var waited int
				waited, err = tb.HandshakeLane(c.Lane, c.Valid, c.Pokes, c.Ready, c.MaxCycles)
				out.Value = uint64(waited)
			}
		case testbench.OpWait:
			if int64(c.MaxCycles) > maxCyclesPerCommand {
				err = fmt.Errorf("wait budget of %d cycles exceeds the per-command budget of %d", c.MaxCycles, maxCyclesPerCommand)
			} else {
				// The predicate rides the engine's early-stop Watch through
				// the port's bulk-run fast path, so the session halts at the
				// exact accepting cycle — no chunk overshoot.
				var p *sim.Port
				if p, err = tb.PortLane(c.Signal, c.Lane); err == nil {
					out.Value, err = p.Wait(c.Until.Pred(), c.MaxCycles)
				}
			}
		default:
			// DecodeCommands validated the op; this is a programming error.
			err = fmt.Errorf("unexecutable op %q", c.Op)
		}
		out.Cycles = tb.Cycle() - before
		if err != nil {
			return outcomes, tb.Cycle() - start, fmt.Errorf("command %d (%s): %w", i, c.Op, err)
		}
		outcomes = append(outcomes, out)
	}
	return outcomes, tb.Cycle() - start, nil
}
