package server

import (
	"encoding/json"
	"fmt"

	"rteaal/internal/testbench"
	"rteaal/sim"
)

// This file is the JSON surface of the session service: every request and
// response body exchanged on the wire, shared by the HTTP handlers and the
// Go client (sim/client). Command lists inside CommandsRequest use the
// testbench wire framing (internal/testbench.Command), which carries its
// own validator and fuzz target.

// CompileOptions is the wire form of the sim compile options a client may
// select. The zero value compiles with the package defaults (PSU kernel,
// default passes, unpartitioned, one batch worker).
type CompileOptions struct {
	// Kernel names a kernel configuration ("RU".."TI"); empty = PSU.
	Kernel string `json:"kernel,omitempty"`
	// Partitions > 0 compiles for RepCut-partitioned sessions.
	Partitions int `json:"partitions,omitempty"`
	// Strategy selects the partition ownership assignment
	// ("round-robin", "cone-cluster", "min-cut"); empty = min-cut.
	Strategy string `json:"strategy,omitempty"`
	// BatchWorkers > 0 shards batch lanes over persistent workers.
	BatchWorkers int `json:"batch_workers,omitempty"`
	// Waveform compiles waveform-safe (registers kept).
	Waveform bool `json:"waveform,omitempty"`
}

// SimOptions resolves the wire options to sim compile options, rejecting
// unknown names and out-of-range counts before any compilation work runs.
func (o CompileOptions) SimOptions() ([]sim.Option, error) {
	var opts []sim.Option
	if o.Kernel != "" {
		k, err := sim.ParseKernel(o.Kernel)
		if err != nil {
			return nil, err
		}
		opts = append(opts, sim.WithKernel(k))
	}
	if o.Partitions != 0 {
		if o.Partitions < 0 {
			return nil, fmt.Errorf("server: partitions must be >= 1, got %d", o.Partitions)
		}
		opts = append(opts, sim.WithPartitions(o.Partitions))
	}
	if o.Strategy != "" {
		s, err := sim.ParsePartitionStrategy(o.Strategy)
		if err != nil {
			return nil, err
		}
		opts = append(opts, sim.WithPartitionStrategy(s))
	}
	if o.BatchWorkers != 0 {
		if o.BatchWorkers < 0 {
			return nil, fmt.Errorf("server: batch_workers must be >= 1, got %d", o.BatchWorkers)
		}
		opts = append(opts, sim.WithBatchWorkers(o.BatchWorkers))
	}
	if o.Waveform {
		opts = append(opts, sim.WithWaveform())
	}
	return opts, nil
}

// CompileRequest is the body of POST /designs.
type CompileRequest struct {
	// Source is the FIRRTL source text to compile.
	Source string `json:"source"`
	// Options select the compile configuration; part of the cache key.
	Options CompileOptions `json:"options,omitempty"`
}

// DesignInfo describes one cached compiled design.
type DesignInfo struct {
	// Hash is the design's cache identity: sim.SourceHash over the
	// normalized source and resolved options.
	Hash string `json:"hash"`
	// Design is the circuit name.
	Design string `json:"design"`
	// Compile-time figures (sim.Stats).
	Ops       int `json:"ops"`
	Layers    int `json:"layers"`
	Registers int `json:"registers"`
	// Port and signal names clients can bind.
	Inputs  []string `json:"inputs"`
	Outputs []string `json:"outputs"`
	Signals []string `json:"signals"`
}

// CompileResponse is the body answering POST /designs (201 on a fresh
// compile, 200 when served from cache) and GET /designs/{hash}.
type CompileResponse struct {
	DesignInfo
	// Cached is true when the design was already in the cross-user cache
	// (or another client's in-flight compile was joined).
	Cached bool `json:"cached"`
}

// CreateSessionRequest is the body of POST /designs/{hash}/sessions. An
// empty body is a plain single-lane session.
type CreateSessionRequest struct {
	// Lanes > 0 serves the session from a multi-lane batch instead of a
	// pooled scalar session; commands then address lanes individually.
	Lanes int `json:"lanes,omitempty"`
}

// SessionResponse describes one live session lease.
type SessionResponse struct {
	SessionID string `json:"session_id"`
	Hash      string `json:"hash"`
	// Lanes is the number of drivable lanes (1 for pooled sessions).
	Lanes int `json:"lanes"`
}

// CommandsRequest is the body of POST /sessions/{id}/commands: a batched
// list of wire commands executed in order on the session, many cycles per
// round-trip.
type CommandsRequest struct {
	Commands json.RawMessage `json:"commands"`
}

// CommandsResponse answers a command batch. When execution stops early
// (unknown signal, wait timeout, budget exceeded, deadline, cancellation)
// Outcomes holds the completed prefix and Error the failure — the cycles
// the prefix simulated are real engine state; Kind classifies the failure
// for programmatic handling. The session stays usable except after a
// panic (Kind "panic"), which quarantines it.
type CommandsResponse struct {
	Outcomes []testbench.Outcome `json:"outcomes"`
	// Cycle is the session's completed-cycle count after the batch.
	Cycle int64  `json:"cycle"`
	Error string `json:"error,omitempty"`
	Kind  string `json:"kind,omitempty"`
}

// Error kinds: the machine-readable classification carried by
// [ErrorResponse.Kind] and [CommandsResponse.Kind] so clients can
// distinguish failure modes without parsing messages.
const (
	// KindPanic marks a recovered panic (500). The session involved, if
	// any, was quarantined; the work's effects must be presumed lost.
	KindPanic = "panic"
	// KindTimeout marks a deadline expiry (504). For command lists the
	// completed prefix is reported and its engine state is real.
	KindTimeout = "timeout"
	// KindCanceled marks a run stopped because its session was deleted
	// mid-flight (410).
	KindCanceled = "canceled"
	// KindDraining marks work rejected during graceful shutdown (503 with
	// Retry-After).
	KindDraining = "draining"
	// KindCircuitOpen marks a compile short-circuited by the per-design
	// breaker after repeated failures (503 with Retry-After).
	KindCircuitOpen = "circuit_open"
	// KindBackpressure marks pool or per-client saturation (429 with
	// Retry-After).
	KindBackpressure = "backpressure"
	// KindGone marks a request against a released session (410).
	KindGone = "gone"
)

// LogEntry is one recorded command of a session's transaction log,
// stamped with the cycle at which it started executing. Replaying the
// Command list of a log against a fresh session of the same design
// reproduces the trace.
type LogEntry struct {
	Cycle   int64             `json:"cycle"`
	Command testbench.Command `json:"command"`
	Outcome testbench.Outcome `json:"outcome"`
}

// LogResponse answers GET /sessions/{id}/log.
type LogResponse struct {
	SessionID string `json:"session_id"`
	// Dropped counts oldest entries discarded once the per-session log
	// bound was reached; the log is exact when it is 0.
	Dropped int64      `json:"dropped,omitempty"`
	Entries []LogEntry `json:"entries"`
}

// HealthResponse answers GET /healthz — pure liveness: 200 whenever the
// process can serve HTTP at all, drain or no drain. Load balancers that
// must stop routing new work watch /readyz instead.
type HealthResponse struct {
	Status   string `json:"status"`
	Designs  int    `json:"designs"`
	Sessions int    `json:"sessions"`
}

// ReadyResponse answers GET /readyz — readiness: 200 with status "ready"
// while the server accepts new work, 503 with status "draining" during
// graceful shutdown, and 503 with status "degraded" when no compiled
// design is servable and at least one design's compile is circuit-broken.
type ReadyResponse struct {
	Status      string `json:"status"`
	Draining    bool   `json:"draining"`
	Designs     int    `json:"designs"`
	CircuitOpen int    `json:"circuit_open"`
}

// ErrorResponse is the body of every non-2xx answer. Kind, when set,
// classifies the failure (see the Kind* constants).
type ErrorResponse struct {
	Error string `json:"error"`
	Kind  string `json:"kind,omitempty"`
}
