package server_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"rteaal/internal/faultinject"
	"rteaal/internal/server"
	"rteaal/sim"
	"rteaal/sim/client"
)

// checkGoroutineLeaks snapshots the goroutine count and registers a
// cleanup asserting the count settles back. Call it FIRST in a test, so
// the check runs LAST — after the test's own cleanups (server close,
// httptest close) have torn everything down. A settle loop absorbs the
// asynchronous unwinding of HTTP keep-alives and worker joins.
func checkGoroutineLeaks(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		http.DefaultClient.CloseIdleConnections()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if runtime.NumGoroutine() <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Errorf("goroutine leak: %d before, %d after\n%s",
					before, runtime.NumGoroutine(), buf[:n])
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// parityRun drives the standard counter script over the wire and compares
// against the in-process reference — the "is the server still simulating
// correctly" probe the fault tests run after every injected failure.
func parityRun(t *testing.T, c *client.Client) {
	t.Helper()
	ctx := context.Background()
	cr, err := c.Compile(ctx, counterSrc, server.CompileOptions{})
	if err != nil {
		t.Fatalf("parity compile: %v", err)
	}
	d, err := sim.Compile(counterSrc)
	if err != nil {
		t.Fatal(err)
	}
	script := counterScript(1)
	want := refExec(t, d.NewSession().Testbench(), script.Commands())

	sess, err := c.NewSession(ctx, cr.Hash, 0)
	if err != nil {
		t.Fatalf("parity session: %v", err)
	}
	defer sess.Close(ctx)
	resp, err := sess.Do(ctx, script)
	if err != nil {
		t.Fatalf("parity run: %v", err)
	}
	if len(resp.Outcomes) != len(want) {
		t.Fatalf("parity: %d outcomes, want %d", len(resp.Outcomes), len(want))
	}
	for i := range want {
		if resp.Outcomes[i] != want[i] {
			t.Fatalf("parity outcome %d: %+v, want %+v", i, resp.Outcomes[i], want[i])
		}
	}
}

// TestFaultCompilePanic: a panic inside the single-flight compile answers
// a typed 500, concurrent joiners of the same compile unwedge with the
// same error, and the server compiles the very same source cleanly once
// the fault is gone.
func TestFaultCompilePanic(t *testing.T) {
	checkGoroutineLeaks(t)
	t.Cleanup(faultinject.Reset)
	// A high breaker limit: late joiners that miss the single flight start
	// compiles of their own, and each one panics — that must answer
	// "panic", not trip the breaker into "circuit_open" mid-test.
	_, c := newTestService(t, server.Config{CompileFailLimit: 100})
	ctx := context.Background()

	disarm := faultinject.Arm(faultinject.CompilePanic, faultinject.Always(faultinject.Panicf("injected compile crash")))
	const joiners = 4
	var wg sync.WaitGroup
	errs := make([]error, joiners)
	for i := 0; i < joiners; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Compile(ctx, counterSrc, server.CompileOptions{})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.Status != 500 || apiErr.Kind != server.KindPanic {
			t.Fatalf("joiner %d: %v, want a 500 with kind %q", i, err, server.KindPanic)
		}
	}
	disarm()

	parityRun(t, c) // same source now compiles and simulates correctly
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Fault.PanicsRecovered == 0 {
		t.Error("panics_recovered = 0 after an injected compile panic")
	}
}

// TestFaultRunPanicQuarantine: a panic during command execution answers a
// typed 500, quarantines exactly the affected session (discarded from the
// pool, lease unlinked), and the server keeps serving: a fresh session of
// the same design passes the golden-trace parity check.
func TestFaultRunPanicQuarantine(t *testing.T) {
	checkGoroutineLeaks(t)
	t.Cleanup(faultinject.Reset)
	_, c := newTestService(t, server.Config{})
	ctx := context.Background()

	cr, err := c.Compile(ctx, counterSrc, server.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, lanes := range []int{0, 2} {
		t.Run(fmt.Sprintf("lanes=%d", lanes), func(t *testing.T) {
			sess, err := c.NewSession(ctx, cr.Hash, lanes)
			if err != nil {
				t.Fatal(err)
			}
			disarm := faultinject.Arm(faultinject.RunPanic, faultinject.Always(faultinject.Panicf("injected run crash")))
			_, err = sess.Do(ctx, client.NewScript().Step(4))
			disarm()
			var apiErr *client.APIError
			if !errors.As(err, &apiErr) || apiErr.Status != 500 || apiErr.Kind != server.KindPanic {
				t.Fatalf("panicked run answered %v, want 500 kind %q", err, server.KindPanic)
			}
			// The lease is gone — quarantined, not merely errored.
			if _, err := sess.Do(ctx, client.NewScript().Step(1)); !errors.As(err, &apiErr) || apiErr.Status != 404 {
				t.Fatalf("quarantined session answered %v, want 404", err)
			}
		})
	}

	parityRun(t, c) // the design still serves fresh, correct sessions
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Fault.PanicsRecovered < 2 || m.Fault.SessionsQuarantined != 2 {
		t.Errorf("fault metrics %+v, want >=2 panics recovered, exactly 2 quarantines", m.Fault)
	}
	if d := m.Pools[cr.Hash].Discarded; d != 1 {
		t.Errorf("pool discarded %d sessions, want 1 (the scalar lease)", d)
	}
}

// TestFaultSlowRunTimeout: a run outliving ExecTimeout stops at a
// cancellation check and answers 504 with the completed prefix; the
// session survives and runs the next command list normally.
func TestFaultSlowRunTimeout(t *testing.T) {
	checkGoroutineLeaks(t)
	t.Cleanup(faultinject.Reset)
	_, c := newTestService(t, server.Config{ExecTimeout: 50 * time.Millisecond})
	ctx := context.Background()

	cr, err := c.Compile(ctx, counterSrc, server.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := c.NewSession(ctx, cr.Hash, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close(ctx)

	disarm := faultinject.Arm(faultinject.SlowRun, faultinject.Always(faultinject.Sleep(150*time.Millisecond)))
	resp, err := sess.Do(ctx, client.NewScript().Poke("step", 2).Step(100).Peek("count"))
	disarm()
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusGatewayTimeout || apiErr.Kind != server.KindTimeout {
		t.Fatalf("slow run answered %v, want 504 kind %q", err, server.KindTimeout)
	}
	// The completed prefix travels with the 504: the poke ran, the step
	// was cut short before the peek.
	if resp == nil || len(resp.Outcomes) != 1 || resp.Kind != server.KindTimeout {
		t.Fatalf("504 carried %+v, want the 1-command prefix with kind set", resp)
	}

	// Same session, next batch: fully usable.
	ok, err := sess.Do(ctx, client.NewScript().Step(3).Peek("count"))
	if err != nil {
		t.Fatalf("session unusable after timeout: %v", err)
	}
	if len(ok.Outcomes) != 2 {
		t.Fatalf("post-timeout run returned %d outcomes, want 2", len(ok.Outcomes))
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Fault.Timeouts != 1 {
		t.Errorf("timeouts = %d, want 1", m.Fault.Timeouts)
	}
	parityRun(t, c)
}

// TestFaultPoolExhaustedRetry: end-to-end client resilience — injected
// pool exhaustion answers 429 and the client's backoff loop rides it out,
// succeeding once capacity "returns", without the test doing any retrying.
func TestFaultPoolExhaustedRetry(t *testing.T) {
	checkGoroutineLeaks(t)
	t.Cleanup(faultinject.Reset)
	srv := server.New(server.Config{})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	rc := client.New(ts.URL, client.WithClientID("retry"), client.WithRetry(client.RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond, // caps the server's 61s Retry-After hint
		Jitter:      0.2,
	}))
	ctx := context.Background()

	cr, err := rc.Compile(ctx, counterSrc, server.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(faultinject.PoolExhausted, faultinject.FirstN(2, faultinject.Error(errors.New("injected saturation"))))
	sess, err := rc.NewSession(ctx, cr.Hash, 0)
	if err != nil {
		t.Fatalf("client did not ride out the 429s: %v", err)
	}
	defer sess.Close(ctx)
	if h := faultinject.Hits(faultinject.PoolExhausted); h != 3 {
		t.Fatalf("create fired %d times, want 3 (two 429s + the success)", h)
	}
	if _, err := sess.Do(ctx, client.NewScript().Step(2).Peek("count")); err != nil {
		t.Fatalf("session from retried create unusable: %v", err)
	}
}

// TestFaultConnDropNoRetry: a connection dropped after the server already
// executed a command list surfaces as a transport error that the client
// must NOT retry — repeating the batch would advance the simulation twice.
// The session log proves the work happened exactly once.
func TestFaultConnDropNoRetry(t *testing.T) {
	checkGoroutineLeaks(t)
	t.Cleanup(faultinject.Reset)
	srv := server.New(server.Config{})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	rc := client.New(ts.URL, client.WithClientID("dropper"), client.WithRetry(client.RetryPolicy{
		MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond,
	}))
	ctx := context.Background()

	cr, err := rc.Compile(ctx, counterSrc, server.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := rc.NewSession(ctx, cr.Hash, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close(ctx)

	disarm := faultinject.Arm(faultinject.ConnDrop, faultinject.Always(faultinject.Error(errors.New("drop"))))
	_, err = sess.Do(ctx, client.NewScript().Step(5))
	hits := faultinject.Hits(faultinject.ConnDrop) // read before disarm clears the point
	disarm()
	if err == nil {
		t.Fatal("dropped connection produced no error")
	}
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		t.Fatalf("dropped connection surfaced as an API answer: %v", err)
	}
	if hits != 1 {
		t.Fatalf("command list executed %d times after a transport error, want exactly 1 (no retry)", hits)
	}
	// The server did the work: the log holds the step.
	lg, err := sess.Log(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(lg.Entries) != 1 {
		t.Fatalf("log holds %d entries, want the 1 executed command", len(lg.Entries))
	}
}

// TestDrainRejectsAndRecovers: BeginDrain fails readiness (not liveness)
// and answers new work with 503 + Retry-After; EndDrain restores full
// service, proven by a parity run.
func TestDrainRejectsAndRecovers(t *testing.T) {
	checkGoroutineLeaks(t)
	srv, c := newTestService(t, server.Config{})
	ctx := context.Background()

	cr, err := c.Compile(ctx, counterSrc, server.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := c.NewSession(ctx, cr.Hash, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close(ctx)

	srv.BeginDrain()
	if _, err := c.Health(ctx); err != nil {
		t.Fatalf("liveness failed during drain: %v", err)
	}
	var apiErr *client.APIError
	if _, err := c.Ready(ctx); !errors.As(err, &apiErr) || apiErr.Status != 503 {
		t.Fatalf("readiness during drain answered %v, want 503", err)
	}
	for name, call := range map[string]func() error{
		"compile":  func() error { _, err := c.Compile(ctx, counterSrc, server.CompileOptions{}); return err },
		"session":  func() error { _, err := c.NewSession(ctx, cr.Hash, 0); return err },
		"commands": func() error { _, err := sess.Do(ctx, client.NewScript().Step(1)); return err },
	} {
		err := call()
		if !errors.As(err, &apiErr) || apiErr.Status != 503 || apiErr.Kind != server.KindDraining {
			t.Fatalf("%s during drain answered %v, want 503 kind %q", name, err, server.KindDraining)
		}
		if apiErr.RetryAfter <= 0 {
			t.Fatalf("%s 503 carried no Retry-After", name)
		}
	}

	srv.EndDrain()
	if r, err := c.Ready(ctx); err != nil || r.Status != "ready" {
		t.Fatalf("readiness after EndDrain: %v %+v", err, r)
	}
	parityRun(t, c)

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Fault.DrainRejected != 3 {
		t.Errorf("drain_rejected = %d, want 3", m.Fault.DrainRejected)
	}
	if m.Fault.Draining {
		t.Error("metrics still report draining after EndDrain")
	}
}

// TestDrainWaitsForInFlight: Drain blocks until a command list already
// executing finishes, and that list completes successfully — graceful
// shutdown never cuts in-flight work dead.
func TestDrainWaitsForInFlight(t *testing.T) {
	checkGoroutineLeaks(t)
	t.Cleanup(faultinject.Reset)
	srv, c := newTestService(t, server.Config{})
	ctx := context.Background()

	cr, err := c.Compile(ctx, counterSrc, server.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := c.NewSession(ctx, cr.Hash, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close(ctx)

	// Hold the run long enough for drain to start while it is in flight.
	faultinject.Arm(faultinject.SlowRun, faultinject.Always(faultinject.Sleep(150*time.Millisecond)))
	started := time.Now()
	done := make(chan error, 1)
	go func() {
		_, err := sess.Do(ctx, client.NewScript().Step(8).Peek("count"))
		done <- err
	}()
	time.Sleep(30 * time.Millisecond) // let the request reach the handler
	srv.BeginDrain()
	dctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if waited := time.Since(started); waited < 120*time.Millisecond {
		t.Errorf("Drain returned after %s, before the in-flight run could have finished", waited)
	}
	if err := <-done; err != nil {
		t.Fatalf("in-flight run failed during drain: %v", err)
	}
	srv.EndDrain()
}

// TestCircuitBreaker: repeated compile failures of one design trip its
// breaker — further compiles short-circuit with 503 and a Retry-After —
// and after the cooldown a probe is allowed through. Healthy designs are
// unaffected, which also flips /readyz from degraded back to ready.
func TestCircuitBreaker(t *testing.T) {
	checkGoroutineLeaks(t)
	var mu sync.Mutex
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	_, c := newTestService(t, server.Config{
		CompileFailLimit: 2,
		BreakerCooldown:  30 * time.Second,
		Clock:            clock,
	})
	ctx := context.Background()
	const badSrc = "this is not firrtl"

	var apiErr *client.APIError
	for i := 0; i < 2; i++ {
		if _, err := c.Compile(ctx, badSrc, server.CompileOptions{}); !errors.As(err, &apiErr) || apiErr.Status != 422 {
			t.Fatalf("bad compile %d answered %v, want 422", i+1, err)
		}
	}
	// Third attempt: the breaker short-circuits without compiling.
	_, err := c.Compile(ctx, badSrc, server.CompileOptions{})
	if !errors.As(err, &apiErr) || apiErr.Status != 503 || apiErr.Kind != server.KindCircuitOpen {
		t.Fatalf("tripped breaker answered %v, want 503 kind %q", err, server.KindCircuitOpen)
	}
	if apiErr.RetryAfter <= 0 || apiErr.RetryAfter > 30*time.Second {
		t.Fatalf("breaker Retry-After = %s, want in (0, 30s]", apiErr.RetryAfter)
	}
	// Nothing cached and a breaker open: the replica reports degraded.
	if _, err := c.Ready(ctx); !errors.As(err, &apiErr) || apiErr.Status != 503 {
		t.Fatalf("readiness with all designs broken answered %v, want 503", err)
	}

	// Past the cooldown one probe goes through (and fails again, re-opening).
	advance(31 * time.Second)
	if _, err := c.Compile(ctx, badSrc, server.CompileOptions{}); !errors.As(err, &apiErr) || apiErr.Status != 422 {
		t.Fatalf("half-open probe answered %v, want a real 422 compile failure", err)
	}
	if _, err := c.Compile(ctx, badSrc, server.CompileOptions{}); !errors.As(err, &apiErr) || apiErr.Status != 503 {
		t.Fatalf("re-opened breaker answered %v, want 503", err)
	}

	// A healthy design is a different hash: unaffected, and serving it
	// makes the replica ready again.
	parityRun(t, c)
	if r, err := c.Ready(ctx); err != nil || r.Status != "ready" {
		t.Fatalf("readiness with a healthy design: %v %+v", err, r)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Fault.CircuitTrips != 2 || m.Fault.CircuitOpen != 1 {
		t.Errorf("breaker metrics: trips=%d open=%d, want 2 and 1", m.Fault.CircuitTrips, m.Fault.CircuitOpen)
	}
}

// TestReadyzFreshServer: an empty, healthy server is ready — no designs
// cached is not degraded unless a breaker is open.
func TestReadyzFreshServer(t *testing.T) {
	checkGoroutineLeaks(t)
	_, c := newTestService(t, server.Config{})
	r, err := c.Ready(context.Background())
	if err != nil || r.Status != "ready" || r.Draining || r.CircuitOpen != 0 {
		t.Fatalf("fresh server readiness: %v %+v", err, r)
	}
}

// TestDeleteDuringRun: DELETE of a session with a command list in flight
// cancels the run at a chunk boundary — the run answers 410 with the
// completed prefix, the DELETE completes, and the engine returns to the
// pool instead of being held for the rest of the batch.
func TestDeleteDuringRun(t *testing.T) {
	checkGoroutineLeaks(t)
	t.Cleanup(faultinject.Reset)
	_, c := newTestService(t, server.Config{})
	ctx := context.Background()

	cr, err := c.Compile(ctx, counterSrc, server.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := c.NewSession(ctx, cr.Hash, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Hold the handler inside execution long enough for the DELETE to
	// arrive while the command list is in flight; the abort flag is then
	// observed at the run's first cancellation check.
	faultinject.Arm(faultinject.SlowRun, faultinject.Always(faultinject.Sleep(150*time.Millisecond)))
	type result struct {
		resp *server.CommandsResponse
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := sess.Do(ctx, client.NewScript().Poke("step", 1).Step(1_000_000))
		done <- result{resp, err}
	}()
	time.Sleep(30 * time.Millisecond)
	delStart := time.Now()
	if err := sess.Close(ctx); err != nil {
		t.Fatalf("DELETE during run: %v", err)
	}
	delWait := time.Since(delStart)

	r := <-done
	var apiErr *client.APIError
	if !errors.As(r.err, &apiErr) || apiErr.Status != http.StatusGone || apiErr.Kind != server.KindCanceled {
		t.Fatalf("canceled run answered %v, want 410 kind %q", r.err, server.KindCanceled)
	}
	if r.resp == nil || r.resp.Kind != server.KindCanceled {
		t.Fatalf("canceled run carried %+v, want the prefix response with kind set", r.resp)
	}
	// The DELETE waited for the abort handshake, not the full megacycle run.
	if delWait > 3*time.Second {
		t.Errorf("DELETE blocked %s; cancellation did not cut the run short", delWait)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Fault.Canceled != 1 {
		t.Errorf("canceled = %d, want 1", m.Fault.Canceled)
	}
	if m.Sessions.Live != 0 {
		t.Errorf("%d sessions leaked past the DELETE", m.Sessions.Live)
	}
	parityRun(t, c) // the pooled engine the DELETE reclaimed serves again
}
