package server

import (
	"container/list"
	"sync"
	"time"

	"rteaal/sim"
)

// designCache is the cross-user compiled-design cache: *sim.Design values
// keyed by sim.SourceHash, bounded by an LRU, with single-flight
// deduplication so N clients posting the same source concurrently pay for
// exactly one compile. Each entry owns the elastic session pool serving
// that design; evicting an entry closes its pool (idle sessions drain,
// checked-out sessions retire on Put).
type designCache struct {
	mu       sync.Mutex
	max      int
	poolCap  int
	now      func() time.Time
	entries  map[string]*cacheEntry
	lru      *list.List // of *cacheEntry; front = most recently used
	inflight map[string]*compileCall

	hits, misses, evictions, dedups uint64
}

// cacheEntry is one cached design plus its serving pool.
type cacheEntry struct {
	hash   string
	design *sim.Design
	info   DesignInfo
	pool   *sim.Pool
	elem   *list.Element
}

// compileCall is one in-flight compile other callers join.
type compileCall struct {
	done  chan struct{}
	entry *cacheEntry
	err   error
}

func newDesignCache(maxEntries, poolCap int, now func() time.Time) *designCache {
	return &designCache{
		max:      maxEntries,
		poolCap:  poolCap,
		now:      now,
		entries:  make(map[string]*cacheEntry),
		lru:      list.New(),
		inflight: make(map[string]*compileCall),
	}
}

// lookup returns the cached entry for hash, counting a hit and refreshing
// its LRU position, or (nil, false) without counting a miss — lookup
// misses are "unknown design" errors, not compile demand.
func (c *designCache) lookup(hash string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[hash]
	if !ok {
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(e.elem)
	return e, true
}

// getOrCompile returns the entry for hash, compiling it with compile at
// most once across all concurrent callers. cached reports whether the
// caller was served without running its own compile (an existing entry or
// a joined in-flight one).
func (c *designCache) getOrCompile(hash string, compile func() (*sim.Design, error)) (e *cacheEntry, cached bool, err error) {
	c.mu.Lock()
	if e, ok := c.entries[hash]; ok {
		c.hits++
		c.lru.MoveToFront(e.elem)
		c.mu.Unlock()
		return e, true, nil
	}
	if call, ok := c.inflight[hash]; ok {
		// Another client is compiling this very design: join it.
		c.dedups++
		c.mu.Unlock()
		<-call.done
		return call.entry, true, call.err
	}
	c.misses++
	call := &compileCall{done: make(chan struct{})}
	c.inflight[hash] = call
	c.mu.Unlock()

	d, err := compile()

	c.mu.Lock()
	delete(c.inflight, hash)
	var evict []*cacheEntry
	if err == nil {
		call.entry, err = c.insertLocked(hash, d)
		if err == nil {
			evict = c.evictOverflowLocked()
		}
	}
	call.err = err
	c.mu.Unlock()
	close(call.done)
	// Pool teardown can join partition workers; never do it under the lock.
	for _, old := range evict {
		old.pool.Close()
	}
	return call.entry, false, err
}

func (c *designCache) insertLocked(hash string, d *sim.Design) (*cacheEntry, error) {
	pool, err := sim.NewPool(d, c.poolCap)
	if err != nil {
		return nil, err
	}
	pool.SetClock(c.now)
	st := d.Stats()
	e := &cacheEntry{
		hash:   hash,
		design: d,
		pool:   pool,
		info: DesignInfo{
			Hash:      hash,
			Design:    st.Design,
			Ops:       st.Ops,
			Layers:    st.Layers,
			Registers: st.Registers,
			Inputs:    d.Inputs(),
			Outputs:   d.Outputs(),
			Signals:   d.Signals(),
		},
	}
	e.elem = c.lru.PushFront(e)
	c.entries[hash] = e
	return e, nil
}

// evictOverflowLocked pops least-recently-used entries past the bound and
// returns them for teardown outside the lock.
func (c *designCache) evictOverflowLocked() []*cacheEntry {
	var evict []*cacheEntry
	for len(c.entries) > c.max {
		oldest := c.lru.Back()
		if oldest == nil {
			break
		}
		e := oldest.Value.(*cacheEntry)
		c.lru.Remove(oldest)
		delete(c.entries, e.hash)
		c.evictions++
		evict = append(evict, e)
	}
	return evict
}

// reapIdle shrinks every design's pool: sessions idle past ttl close and
// return their creation budget. Reports total sessions reaped.
func (c *designCache) reapIdle(ttl time.Duration) int {
	c.mu.Lock()
	pools := make([]*sim.Pool, 0, len(c.entries))
	for _, e := range c.entries {
		pools = append(pools, e.pool)
	}
	c.mu.Unlock()
	total := 0
	for _, p := range pools {
		total += p.ReapIdle(ttl)
	}
	return total
}

// stats snapshots the cache counters plus every entry's pool occupancy.
func (c *designCache) stats() (CacheMetrics, map[string]PoolMetrics) {
	c.mu.Lock()
	cm := CacheMetrics{
		Entries:         len(c.entries),
		Max:             c.max,
		Hits:            c.hits,
		Misses:          c.misses,
		Evictions:       c.evictions,
		InflightDeduped: c.dedups,
	}
	pools := make(map[string]*sim.Pool, len(c.entries))
	for h, e := range c.entries {
		pools[h] = e.pool
	}
	c.mu.Unlock()
	pm := make(map[string]PoolMetrics, len(pools))
	for h, p := range pools {
		st := p.Stats()
		pm[h] = PoolMetrics{
			Cap:        st.Cap,
			Idle:       st.Idle,
			CheckedOut: st.CheckedOut,
			Live:       st.Live,
			HighWater:  st.HighWater,
			Checkouts:  st.Checkouts,
			Reaped:     st.Reaped,
		}
	}
	return cm, pm
}

// close tears the whole cache down: every pool closes, every entry drops.
func (c *designCache) close() {
	c.mu.Lock()
	entries := make([]*cacheEntry, 0, len(c.entries))
	for _, e := range c.entries {
		entries = append(entries, e)
	}
	c.entries = make(map[string]*cacheEntry)
	c.lru.Init()
	c.mu.Unlock()
	for _, e := range entries {
		e.pool.Close()
	}
}
