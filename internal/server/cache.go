package server

import (
	"container/list"
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"rteaal/internal/faultinject"
	"rteaal/sim"
)

// designCache is the cross-user compiled-design cache: *sim.Design values
// keyed by sim.SourceHash, bounded by an LRU, with single-flight
// deduplication so N clients posting the same source concurrently pay for
// exactly one compile. Each entry owns the elastic session pool serving
// that design; evicting an entry closes its pool (idle sessions drain,
// checked-out sessions retire on Put).
type designCache struct {
	mu        sync.Mutex
	max       int
	poolCap   int
	failLimit int           // consecutive compile failures that trip a breaker
	cooldown  time.Duration // how long a tripped breaker short-circuits
	now       func() time.Time
	entries   map[string]*cacheEntry
	lru       *list.List // of *cacheEntry; front = most recently used
	inflight  map[string]*compileCall
	breakers  map[string]*breakerState

	hits, misses, evictions, dedups, trips uint64
}

// breakerState tracks one design hash's compile-failure circuit breaker.
// After failLimit consecutive failures the breaker opens: compiles of that
// hash short-circuit with errCircuitOpen until the cooldown elapses, at
// which point one probe compile is allowed through (half-open); its failure
// re-opens the breaker, its success clears it.
type breakerState struct {
	fails     int
	openUntil time.Time
}

// errCircuitOpen is the short-circuit answer for a tripped breaker,
// carrying the Retry-After the client should honor.
type errCircuitOpen struct {
	retryAfter time.Duration
}

func (e errCircuitOpen) Error() string {
	return fmt.Sprintf("compile circuit open after repeated failures; retry in %s", e.retryAfter.Round(time.Second))
}

// cacheEntry is one cached design plus its serving pool.
type cacheEntry struct {
	hash   string
	design *sim.Design
	info   DesignInfo
	pool   *sim.Pool
	elem   *list.Element
}

// compileCall is one in-flight compile other callers join.
type compileCall struct {
	done  chan struct{}
	entry *cacheEntry
	err   error
}

func newDesignCache(maxEntries, poolCap, failLimit int, cooldown time.Duration, now func() time.Time) *designCache {
	return &designCache{
		max:       maxEntries,
		poolCap:   poolCap,
		failLimit: failLimit,
		cooldown:  cooldown,
		now:       now,
		entries:   make(map[string]*cacheEntry),
		lru:       list.New(),
		inflight:  make(map[string]*compileCall),
		breakers:  make(map[string]*breakerState),
	}
}

// lookup returns the cached entry for hash, counting a hit and refreshing
// its LRU position, or (nil, false) without counting a miss — lookup
// misses are "unknown design" errors, not compile demand.
func (c *designCache) lookup(hash string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[hash]
	if !ok {
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(e.elem)
	return e, true
}

// getOrCompile returns the entry for hash, compiling it with compile at
// most once across all concurrent callers. cached reports whether the
// caller was served without running its own compile (an existing entry or
// a joined in-flight one). A joiner whose ctx expires abandons the wait
// with ctx.Err(); the compile itself keeps running for the other joiners.
// A panic inside compile is recovered into a *panicFault error — the
// single-flight channel always closes, so joiners can never hang on a
// crashed compile — and counts as a breaker failure like any other.
func (c *designCache) getOrCompile(ctx context.Context, hash string, compile func() (*sim.Design, error)) (e *cacheEntry, cached bool, err error) {
	c.mu.Lock()
	if e, ok := c.entries[hash]; ok {
		c.hits++
		c.lru.MoveToFront(e.elem)
		c.mu.Unlock()
		return e, true, nil
	}
	if call, ok := c.inflight[hash]; ok {
		// Another client is compiling this very design: join it.
		c.dedups++
		c.mu.Unlock()
		select {
		case <-call.done:
			return call.entry, true, call.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	if err := c.breakerCheckLocked(hash); err != nil {
		c.mu.Unlock()
		return nil, false, err
	}
	c.misses++
	call := &compileCall{done: make(chan struct{})}
	c.inflight[hash] = call
	c.mu.Unlock()

	d, err := compileRecover(compile)

	c.mu.Lock()
	delete(c.inflight, hash)
	var evict []*cacheEntry
	if err == nil {
		call.entry, err = c.insertLocked(hash, d)
		if err == nil {
			evict = c.evictOverflowLocked()
		}
	}
	c.breakerRecordLocked(hash, err)
	call.err = err
	c.mu.Unlock()
	close(call.done)
	// Pool teardown can join partition workers; never do it under the lock.
	for _, old := range evict {
		old.pool.Close()
	}
	return call.entry, false, err
}

// compileRecover runs the compile inside a recovery boundary (plus the
// fault-injection points tests arm to exercise it).
func compileRecover(compile func() (*sim.Design, error)) (d *sim.Design, err error) {
	defer func() {
		if r := recover(); r != nil {
			d, err = nil, &panicFault{val: r, stack: debug.Stack()}
		}
	}()
	if ferr := faultinject.Fire(faultinject.CompilePanic); ferr != nil {
		panic(ferr)
	}
	if ferr := faultinject.Fire(faultinject.CompileFail); ferr != nil {
		return nil, ferr
	}
	return compile()
}

// breakerCheckLocked short-circuits a compile whose breaker is open. Past
// the cooldown the breaker goes half-open: this probe is allowed through,
// and breakerRecordLocked decides whether it re-opens or clears.
func (c *designCache) breakerCheckLocked(hash string) error {
	if c.failLimit <= 0 {
		return nil
	}
	b := c.breakers[hash]
	if b == nil || b.fails < c.failLimit {
		return nil
	}
	if remain := b.openUntil.Sub(c.now()); remain > 0 {
		return errCircuitOpen{retryAfter: remain}
	}
	return nil
}

// breakerRecordLocked accounts one compile attempt's result against the
// hash's breaker: failures accumulate and (re-)open it at the limit,
// success clears it.
func (c *designCache) breakerRecordLocked(hash string, err error) {
	if c.failLimit <= 0 {
		return
	}
	if err == nil {
		delete(c.breakers, hash)
		return
	}
	b := c.breakers[hash]
	if b == nil {
		b = &breakerState{}
		c.breakers[hash] = b
	}
	b.fails++
	if b.fails >= c.failLimit {
		b.openUntil = c.now().Add(c.cooldown)
		c.trips++
	}
}

// breakerStats reports lifetime trips and how many hashes are open now.
func (c *designCache) breakerStats() (trips uint64, open int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	for _, b := range c.breakers {
		if b.fails >= c.failLimit && b.openUntil.After(now) {
			open++
		}
	}
	return c.trips, open
}

func (c *designCache) insertLocked(hash string, d *sim.Design) (*cacheEntry, error) {
	pool, err := sim.NewPool(d, c.poolCap)
	if err != nil {
		return nil, err
	}
	pool.SetClock(c.now)
	st := d.Stats()
	e := &cacheEntry{
		hash:   hash,
		design: d,
		pool:   pool,
		info: DesignInfo{
			Hash:      hash,
			Design:    st.Design,
			Ops:       st.Ops,
			Layers:    st.Layers,
			Registers: st.Registers,
			Inputs:    d.Inputs(),
			Outputs:   d.Outputs(),
			Signals:   d.Signals(),
		},
	}
	e.elem = c.lru.PushFront(e)
	c.entries[hash] = e
	return e, nil
}

// evictOverflowLocked pops least-recently-used entries past the bound and
// returns them for teardown outside the lock.
func (c *designCache) evictOverflowLocked() []*cacheEntry {
	var evict []*cacheEntry
	for len(c.entries) > c.max {
		oldest := c.lru.Back()
		if oldest == nil {
			break
		}
		e := oldest.Value.(*cacheEntry)
		c.lru.Remove(oldest)
		delete(c.entries, e.hash)
		c.evictions++
		evict = append(evict, e)
	}
	return evict
}

// reapIdle shrinks every design's pool: sessions idle past ttl close and
// return their creation budget. Reports total sessions reaped.
func (c *designCache) reapIdle(ttl time.Duration) int {
	c.mu.Lock()
	pools := make([]*sim.Pool, 0, len(c.entries))
	for _, e := range c.entries {
		pools = append(pools, e.pool)
	}
	c.mu.Unlock()
	total := 0
	for _, p := range pools {
		total += p.ReapIdle(ttl)
	}
	return total
}

// stats snapshots the cache counters plus every entry's pool occupancy.
func (c *designCache) stats() (CacheMetrics, map[string]PoolMetrics) {
	c.mu.Lock()
	cm := CacheMetrics{
		Entries:         len(c.entries),
		Max:             c.max,
		Hits:            c.hits,
		Misses:          c.misses,
		Evictions:       c.evictions,
		InflightDeduped: c.dedups,
	}
	pools := make(map[string]*sim.Pool, len(c.entries))
	for h, e := range c.entries {
		pools[h] = e.pool
	}
	c.mu.Unlock()
	pm := make(map[string]PoolMetrics, len(pools))
	for h, p := range pools {
		st := p.Stats()
		pm[h] = PoolMetrics{
			Cap:        st.Cap,
			Idle:       st.Idle,
			CheckedOut: st.CheckedOut,
			Live:       st.Live,
			HighWater:  st.HighWater,
			Checkouts:  st.Checkouts,
			Reaped:     st.Reaped,
			Discarded:  st.Discarded,
		}
	}
	return cm, pm
}

// close tears the whole cache down: every pool closes, every entry drops.
func (c *designCache) close() {
	c.mu.Lock()
	entries := make([]*cacheEntry, 0, len(c.entries))
	for _, e := range c.entries {
		entries = append(entries, e)
	}
	c.entries = make(map[string]*cacheEntry)
	c.lru.Init()
	c.mu.Unlock()
	for _, e := range entries {
		e.pool.Close()
	}
}
